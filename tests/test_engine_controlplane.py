"""Control-plane unit tests: autoscaler, drains, merge integrity, limits.

Covers the pieces :mod:`repro.engine.controlplane` layers on top of the
plain frame server — the reactive :class:`Autoscaler` (warm start,
jump-to-target scale-up, dwell-gated scale-down, the no-flap guarantee),
the byte-determinism of the scaling audit trail over real scenarios,
shard drains (router spillover + cache invalidation), the multi-shard
merge (index bijection, global node ids, additive SLO accounting), and
the ``node_limit`` prefix contract the whole warm-spare design rides on.
"""

import numpy as np
import pytest

from repro.engine import (
    Autoscaler,
    AutoscalerConfig,
    ControlPlane,
    FrameRequest,
    FrameServer,
    build_scenario,
)
from repro.nn.models import build_lenet


def _config(**overrides):
    defaults = dict(
        window_s=0.1,
        min_nodes=1,
        max_nodes=4,
        fps_per_node=100.0,
    )
    defaults.update(overrides)
    return AutoscalerConfig(**defaults)


# ----------------------------------------------------------------------
# AutoscalerConfig validation and parsing
# ----------------------------------------------------------------------
def test_config_rejects_inverted_bounds():
    with pytest.raises(ValueError, match="max_nodes"):
        AutoscalerConfig(min_nodes=3, max_nodes=2)
    with pytest.raises(ValueError, match="window_s"):
        AutoscalerConfig(window_s=0.0)
    with pytest.raises(ValueError, match="target_utilization"):
        AutoscalerConfig(target_utilization=1.5)
    with pytest.raises(ValueError, match="scale_down_utilization"):
        AutoscalerConfig(target_utilization=0.5, scale_down_utilization=0.6)
    with pytest.raises(ValueError, match="fps_per_node"):
        AutoscalerConfig(fps_per_node=-1.0)


def test_config_parse_cli_spec():
    config = AutoscalerConfig.parse("1:4")
    assert (config.min_nodes, config.max_nodes) == (1, 4)
    assert config.window_s == AutoscalerConfig().window_s
    assert AutoscalerConfig.parse("2:3:0.02").window_s == 0.02
    with pytest.raises(ValueError, match="min:max"):
        AutoscalerConfig.parse("3")
    with pytest.raises(ValueError):
        AutoscalerConfig.parse("4:1")


# ----------------------------------------------------------------------
# Autoscaler mechanics
# ----------------------------------------------------------------------
def test_warm_start_and_dwell_gated_scale_down():
    scaler = Autoscaler("s0", _config(dwell_windows=2), 100.0)
    assert scaler.nodes == 4  # warm start at max
    assert scaler.observe(0, 30.0) == 4  # first low window: dwell
    assert scaler.observe(1, 30.0) == 3  # second: one node trimmed
    assert scaler.observe(2, 30.0) == 3  # streak restarted after a trim
    assert scaler.observe(3, 30.0) == 2
    assert [d.reason for d in scaler.decisions] == [
        "scale-down:idle",
        "scale-down:idle",
    ]


def test_scale_up_jumps_to_target_and_clamps():
    scaler = Autoscaler("s0", _config(), 100.0)
    for w in range(6):  # trim down to min first
        scaler.observe(w, 5.0)
    assert scaler.nodes == 1
    # 350 FPS at target 0.7 needs ceil(350/70) = 5 nodes -> clamp to 4.
    assert scaler.observe(6, 350.0) == 4
    up = scaler.decisions[-1]
    assert up.reason == "scale-up:pressure"
    assert (up.from_nodes, up.to_nodes) == (1, 4)


def test_mid_band_resets_the_dwell_streak():
    scaler = Autoscaler("s0", _config(dwell_windows=2), 100.0)
    scaler.observe(0, 30.0)  # low
    scaler.observe(1, 200.0)  # hysteresis band (0.5 pressure): forgives
    scaler.observe(2, 30.0)  # low again, but the streak restarted
    assert scaler.nodes == 4
    scaler.observe(3, 30.0)
    assert scaler.nodes == 3


def test_never_leaves_the_configured_bounds():
    scaler = Autoscaler("s0", _config(min_nodes=2, max_nodes=3), 100.0)
    for w in range(20):
        scaler.observe(w, 1.0)
    assert scaler.nodes == 2
    for w in range(20, 25):
        scaler.observe(w, 10_000.0)
    assert scaler.nodes == 3


# ----------------------------------------------------------------------
# Determinism + no-flap over real scenarios
# ----------------------------------------------------------------------
def _autoscaled_plane():
    return ControlPlane(
        shards=2,
        micro_batch=8,
        seed=0,
        policy="greedy",
        autoscaler=AutoscalerConfig(
            window_s=0.02, min_nodes=1, max_nodes=3, fps_per_node=250.0
        ),
    )


@pytest.mark.parametrize("key", ["diurnal", "poisson-burst"])
def test_decision_trail_is_byte_deterministic(key):
    """Same scenario + seed + config => byte-identical audit trail."""
    trails = []
    for _ in range(2):
        scenario = build_scenario(key, frames=72, offered_fps=900.0, seed=0)
        report = _autoscaled_plane().serve_scenario(scenario)
        trails.append(report.controlplane.decision_trail())
    assert trails[0] == trails[1]
    assert trails[0]  # the drill actually scaled
    # Every line reprs floats (no str() rounding) — parseable and stable.
    for line in trails[0].splitlines():
        assert " pressure=" in line and "->" in line


@pytest.mark.parametrize("key", ["diurnal", "poisson-burst"])
def test_no_flapping_within_the_dwell_window(key):
    """A scale-up is never answered by a scale-down inside the dwell."""
    scenario = build_scenario(key, frames=72, offered_fps=900.0, seed=0)
    plane = _autoscaled_plane()
    dwell = plane.autoscaler_config.dwell_windows
    report = plane.serve_scenario(scenario)
    by_shard: dict = {}
    for decision in report.controlplane.decisions:
        by_shard.setdefault(decision.shard, []).append(decision)
    for decisions in by_shard.values():
        assert decisions == sorted(decisions, key=lambda d: d.window)
        for previous, current in zip(decisions, decisions[1:]):
            if (
                previous.reason == "scale-up:pressure"
                and current.reason == "scale-down:idle"
            ):
                assert current.window - previous.window >= dwell, (
                    f"flap: up at w{previous.window}, down at "
                    f"w{current.window} (dwell {dwell})"
                )


def test_node_seconds_accounting_is_consistent():
    scenario = build_scenario("diurnal", frames=72, offered_fps=900.0, seed=0)
    plane = _autoscaled_plane()
    cp = plane.serve_scenario(scenario).controlplane
    window_s = cp.window_s
    total = sum(
        count * window_s
        for trajectory in cp.nodes_by_window.values()
        for count in trajectory
    )
    assert cp.node_seconds == pytest.approx(total)
    assert cp.static_node_seconds == pytest.approx(
        len(cp.shards) * 3 * cp.windows * window_s
    )
    assert 0.0 <= cp.node_seconds_saved_frac < 1.0


# ----------------------------------------------------------------------
# Multi-shard merge integrity
# ----------------------------------------------------------------------
def test_static_multi_shard_merge_preserves_the_stream():
    scenario = build_scenario(
        "mixed-tenants", frames=48, offered_fps=1500.0, seed=0
    )
    total_offered = len(scenario.requests)
    plane = ControlPlane(shards=3, nodes_per_shard=2, micro_batch=8, seed=0)
    report = plane.serve_scenario(scenario)

    assert len(report.responses) == total_offered
    assert [r.index for r in report.responses] == list(range(total_offered))
    total_nodes = 3 * 2
    for response in report.responses:
        if not response.dropped:
            assert 0 <= response.node_id < total_nodes
    assert set(report.node_frames) <= set(range(total_nodes))
    assert sum(report.node_frames.values()) == total_offered - len(
        [r for r in report.responses if r.dropped]
    )
    events = report.stream.events
    assert len(events) == total_offered
    ordered = sorted(events, key=lambda e: (e.arrival_s, e.index))
    assert events == ordered
    assert report.slo is not None
    assert (
        sum(stats.offered for stats in report.slo.classes.values())
        == total_offered
    )
    cp = report.controlplane
    assert cp.autoscaled is False
    assert sorted(cp.shards) == ["s0", "s1", "s2"]
    assert set(cp.routes.values()) <= {"s0", "s1", "s2"}


def test_partition_placement_deals_models_round_robin():
    scenario = build_scenario(
        "diurnal-regions", frames=40, offered_fps=800.0, seed=0
    )
    plane = ControlPlane(
        shards=["na", "eu", "ap"], nodes_per_shard=1, micro_batch=8, seed=0
    )
    plane.serve_scenario(scenario, placement="partition")
    hosted = {shard.name: sorted(shard.hosted) for shard in plane.shards}
    # Four zoo entries dealt over three shards: the fourth wraps to "na".
    assert hosted["na"] == ["lenet-4b@na", "mlp-2b"]
    assert hosted["eu"][0] == "lenet-4b@eu"
    assert hosted["ap"][0] == "lenet-4b@ap"
    with pytest.raises(ValueError, match="placement"):
        plane.serve_scenario(scenario, placement="sharded")


# ----------------------------------------------------------------------
# Drains
# ----------------------------------------------------------------------
def test_drain_reroutes_tenants_and_releases_cache_bytes():
    plane = ControlPlane(shards=3, nodes_per_shard=1, micro_batch=8, seed=0)
    plane.register_model("m", build_lenet(seed=0))
    # A second model placed *only* on the shard we will drain: its
    # tenants must spill over onto shards that never programmed it.
    plane.register_model("m2", build_lenet(seed=1), shards=["s0"])
    frames = np.random.default_rng(5).uniform(0.0, 1.0, (12, 1, 28, 28))
    tenants = [f"t{i}" for i in range(6)]
    requests = [
        FrameRequest(
            frames[i], "m" if i % 2 == 0 else "m2", tenant=tenants[i % 6]
        )
        for i in range(12)
    ]
    first = plane.serve(requests, offered_fps=900.0).controlplane
    assert len(set(first.routes.values())) > 1  # rendezvous spread them
    assert all(
        shard == "s0"
        for route, shard in first.routes.items()
        if route.endswith("|m2")
    )
    moved = sum(1 for shard in first.routes.values() if shard == "s0")
    assert moved > 0

    dropped = plane.drain("s0")
    assert dropped > 0  # the shared cache released die programs
    assert plane.drain("s0") == 0  # idempotent
    second = plane.serve(requests, offered_fps=900.0).controlplane
    assert "s0" not in set(second.routes.values())
    assert second.drained == ("s0",)
    assert second.cache_invalidations == dropped
    assert second.reroutes >= moved
    # The m2 movers landed on cold shards: spillover placement adopted
    # the model there and preload-on-route programmed its dies.
    assert second.preloads > 0
    landing = {
        shard
        for route, shard in second.routes.items()
        if route.endswith("|m2")
    }
    for name in landing:
        assert plane.shard(name).hosts("m2")


def test_unknown_shard_name_fails_loudly():
    plane = ControlPlane(shards=2, nodes_per_shard=1, seed=0)
    with pytest.raises(ValueError, match="unknown shard"):
        plane.shard("nope")
    with pytest.raises(ValueError, match="duplicate shard names"):
        ControlPlane(shards=["a", "a"], nodes_per_shard=1)


# ----------------------------------------------------------------------
# node_limit: the prefix contract under the warm spares
# ----------------------------------------------------------------------
def test_node_limit_prefix_is_bit_identical_to_a_smaller_fleet():
    frames = np.random.default_rng(11).uniform(0.0, 1.0, (16, 1, 28, 28))
    requests = [FrameRequest(frame, "m") for frame in frames]

    big = FrameServer(num_nodes=4, micro_batch=8, seed=0)
    big.register_model("m", build_lenet(seed=0))
    limited = big.serve(
        [FrameRequest(frame, "m") for frame in frames],
        offered_fps=1200.0,
        node_limit=2,
    )

    small = FrameServer(num_nodes=2, micro_batch=8, seed=0)
    small.register_model("m", build_lenet(seed=0))
    plain = small.serve(requests, offered_fps=1200.0)

    assert len(limited.responses) == len(plain.responses)
    for ours, theirs in zip(limited.responses, plain.responses):
        assert ours.node_id == theirs.node_id
        assert ours.event == theirs.event
        if ours.output is not None:
            assert np.array_equal(ours.output, theirs.output)
    assert repr(limited.stream.total_energy_j) == repr(
        plain.stream.total_energy_j
    )
    assert limited.node_frames == plain.node_frames


def test_node_limit_validates_and_rejects_resilience_layers():
    server = FrameServer(num_nodes=2, micro_batch=8, seed=0)
    server.register_model("m", build_lenet(seed=0))
    frame = np.zeros((1, 28, 28))
    with pytest.raises(ValueError, match=r"node_limit must be in \[1, 2\]"):
        server.serve([FrameRequest(frame, "m")], node_limit=3)
    with pytest.raises(ValueError, match="node_limit"):
        server.serve([FrameRequest(frame, "m")], node_limit=0)
