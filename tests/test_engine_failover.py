"""Tests for repro.engine.failover — retry, warm spares, brownout tiers."""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.engine import FrameServer
from repro.engine.admission import SloClass
from repro.engine.failover import (
    BROWNOUT_TIERS,
    BrownoutConfig,
    BrownoutController,
    FailoverCoordinator,
    ResilienceReport,
    RetryPolicy,
    SparePool,
    availability,
    recovery_time_s,
    retry_policy,
)
from repro.engine.workloads import build_scenario


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
def test_named_retry_policies_resolve():
    assert RetryPolicy.named("none") is None
    assert retry_policy(None) is None
    deadline = RetryPolicy.named("deadline")
    aggressive = RetryPolicy.named("aggressive")
    assert deadline.name == "deadline" and aggressive.name == "aggressive"
    assert aggressive.max_retries > deadline.max_retries
    assert retry_policy("deadline") == deadline
    assert retry_policy(deadline) is deadline
    with pytest.raises(ValueError, match="unknown retry policy"):
        RetryPolicy.named("hopeful")


def test_retry_delays_deterministic_and_backing_off():
    policy = RetryPolicy()
    # Hedged first attempt: exactly the detection delay, no jitter.
    assert policy.delay_s(7, 1, seed=0) == policy.detection_delay_s
    second = policy.delay_s(7, 2, seed=0)
    third = policy.delay_s(7, 3, seed=0)
    assert second > policy.detection_delay_s
    # Exponential growth dominates the ±25% jitter band.
    assert third > second
    # Deterministic per (seed, frame, attempt), independent draws per frame.
    assert policy.delay_s(7, 2, seed=0) == second
    assert policy.delay_s(8, 2, seed=0) != second
    assert policy.delay_s(7, 2, seed=1) != second


def test_retry_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter_frac=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base_s=0.0)


def _item(index=0, attempt=0, deadline_s=math.inf, cls="interactive"):
    return SimpleNamespace(
        index=index,
        attempt=attempt,
        deadline_s=deadline_s,
        slo=SloClass(name=cls, priority=2, deadline_s=0.008),
    )


def test_retry_gate_attempts_budget_and_deadline():
    coordinator = FailoverCoordinator(retry=RetryPolicy(max_retries=2), seed=0)
    for _ in range(4):
        coordinator.record_offered("interactive")
    # Attempts beyond max are abandoned.
    assert coordinator.retry_after_loss(_item(attempt=2), 0.0, 1e-3) is None
    # A retry that cannot meet the frame's deadline is abandoned up front.
    late = _item(deadline_s=1e-4)
    assert coordinator.retry_after_loss(late, 0.0, 1e-3) is None
    # A feasible retry is scheduled strictly after the failure instant.
    ok = coordinator.retry_after_loss(_item(), 0.05, 1e-5)
    assert ok is not None and ok > 0.05
    assert coordinator.report.retries_scheduled == 1


def test_retry_class_budget_denials():
    # budget = ceil(0.5 * 2 offered) = 1 retry for the class.
    coordinator = FailoverCoordinator(
        retry=RetryPolicy(class_budget_frac=0.5), seed=0
    )
    coordinator.record_offered("interactive")
    coordinator.record_offered("interactive")
    assert coordinator.retry_after_loss(_item(index=0), 0.0, 0.0) is not None
    assert coordinator.retry_after_loss(_item(index=1), 0.0, 0.0) is None
    assert coordinator.report.retry_budget_denials == 1
    # Another class has its own budget.
    assert (
        coordinator.retry_after_loss(_item(index=2, cls="batch"), 0.0, 0.0)
        is not None
    )


# ----------------------------------------------------------------------
# Brownout controller
# ----------------------------------------------------------------------
def test_brownout_config_validation():
    assert BrownoutConfig.named("none") is None
    assert BrownoutConfig.named("standard") == BrownoutConfig()
    with pytest.raises(ValueError, match="unknown brownout config"):
        BrownoutConfig.named("polite")
    with pytest.raises(ValueError):
        BrownoutConfig(enter_pressure=(1.0, 2.0, 3.0))  # wrong arity
    with pytest.raises(ValueError):
        BrownoutConfig(enter_pressure=(5.0, 2.5, 1.0, 0.5))  # decreasing
    with pytest.raises(ValueError):
        BrownoutConfig(exit_fraction=1.0)
    with pytest.raises(ValueError):
        BrownoutConfig(reduced_bits=8)


def test_brownout_pressure_signal():
    controller = BrownoutController()
    cfg = controller.config
    assert controller.pressure(cfg.pressure_ref_s, 0.0) == pytest.approx(1.0)
    assert controller.pressure(0.0, 0.5) == pytest.approx(
        cfg.capacity_weight * 0.5
    )
    # A dead fleet (infinite wait) saturates past the top entry bar.
    assert controller.pressure(math.inf, 1.0) > cfg.enter_pressure[-1]


def _escalate(controller, target_tier, start_s=0.0):
    """Feed saturating pressure until the controller reaches the tier."""
    now = start_s
    while controller.tier < target_tier:
        controller.observe(now, math.inf, 1.0)
        now += controller.config.dwell_s
    return now


def test_brownout_climbs_every_rung_and_applies_effects():
    controller = BrownoutController()
    interactive = SloClass(name="interactive", priority=2, deadline_s=0.008)
    best_effort = SloClass(name="best-effort", priority=0, max_queue_s=0.04)

    # Tier 0: everything admitted, bounds untouched.
    assert controller.admits(best_effort)
    assert controller.effective_max_queue_s(interactive) is None
    assert not controller.wants_reduced_bits

    _escalate(controller, 1)
    assert controller.tier == 1  # one rung per dwell window
    assert not controller.admits(best_effort)  # priority 0 shed
    assert controller.admits(interactive)

    _escalate(controller, 2)
    cfg = controller.config
    assert controller.effective_max_queue_s(interactive) == cfg.imposed_queue_s
    assert controller.effective_max_queue_s(best_effort) == min(
        0.04 * cfg.queue_tighten_factor, cfg.imposed_queue_s
    )

    _escalate(controller, 3)
    assert controller.wants_reduced_bits
    assert controller.admits(interactive)

    _escalate(controller, 4)
    assert BROWNOUT_TIERS[controller.tier] == "reject"
    assert not controller.admits(interactive)
    assert controller.report.peak_tier == 4
    assert [t.to_tier for t in controller.report.transitions] == [1, 2, 3, 4]


def test_brownout_hysteresis_exit_below_entry_bar():
    controller = BrownoutController()
    now = _escalate(controller, 1)
    cfg = controller.config
    entry = cfg.enter_pressure[0]
    # Pressure between exit and entry bars: the tier holds.
    held = entry * (cfg.exit_fraction + 1.0) / 2.0 * cfg.pressure_ref_s
    for _ in range(5):
        controller.observe(now, held, 0.0)
        now += cfg.dwell_s
    assert controller.tier == 1
    # Below the exit bar for a dwell window: de-escalates.
    for _ in range(3):
        controller.observe(now, 0.0, 0.0)
        now += cfg.dwell_s
    assert controller.tier == 0
    assert controller.report.transitions[-1].to_tier == 0


# ----------------------------------------------------------------------
# Resilience accounting
# ----------------------------------------------------------------------
def test_recovery_ratio_defaults_to_one_when_nothing_lost():
    report = ResilienceReport(retry_policy="none")
    assert report.recovery_ratio == 1.0
    report.frames_lost_in_flight = 2
    report.frames_recovered = 1
    assert report.recovery_ratio == 0.5


def test_recovery_time_none_without_loss_events():
    report = _serve(chaos_plan=None)
    assert recovery_time_s(report) is None
    assert availability(report) == pytest.approx(
        report.delivered / report.stream.frames
    )


# ----------------------------------------------------------------------
# End-to-end: chaos + failover through the server
# ----------------------------------------------------------------------
def _serve(frames=120, **kwargs):
    scenario = build_scenario(
        "chaos", frames=frames, offered_fps=2400.0, seed=0
    )
    server = FrameServer(
        num_nodes=2, micro_batch=8, seed=0, policy="slo", **kwargs
    )
    for key, model in scenario.models.items():
        server.register_model(key, model)
    server.warmup()
    return server.serve_scenario(scenario)


def test_retry_and_spares_recover_lost_frames():
    baseline = _serve(chaos_plan="node-loss")
    covered = _serve(
        chaos_plan="node-loss", retry_policy="deadline", spares=1
    )
    resilience = covered.resilience
    assert resilience is not None
    assert resilience.frames_lost_in_flight >= 1
    assert resilience.frames_recovered == resilience.frames_lost_in_flight
    assert resilience.frames_abandoned == 0
    assert resilience.spares_activated == 1
    assert resilience.wasted_energy_j > 0.0
    assert covered.delivered > baseline.delivered
    assert availability(covered) > availability(baseline)
    # Recovery: the first post-onset arrival is eventually delivered.
    assert recovery_time_s(covered) < math.inf
    assert recovery_time_s(baseline) is not None


def test_spare_activation_is_pure_cache_hits():
    """The spare adopts the failed die seed: zero extra cache misses."""
    calm = _serve(chaos_plan=None)
    covered = _serve(
        chaos_plan="node-loss", retry_policy="deadline", spares=1
    )
    assert covered.resilience.spares_activated == 1
    assert covered.cache_misses == calm.cache_misses
    assert covered.cache_hits > 0


def test_spares_trimmed_back_after_serve():
    scenario = build_scenario("chaos", frames=120, offered_fps=2400.0, seed=0)
    server = FrameServer(
        num_nodes=2, micro_batch=8, seed=0, policy="slo",
        chaos_plan="node-loss", retry_policy="deadline",
        spares=SparePool(count=1),
    )
    for key, model in scenario.models.items():
        server.register_model(key, model)
    server.warmup()
    report = server.serve_scenario(scenario)
    assert report.resilience.spares_activated == 1
    assert len(server.nodes) == 2  # warm spares live for one serve call
    # ... and the next serve call starts from the configured fleet again.
    second = server.serve_scenario(
        build_scenario("chaos", frames=120, offered_fps=2400.0, seed=0)
    )
    assert second.resilience.spares_activated == 1


def test_failover_serving_is_deterministic():
    def digest(report):
        return [
            (r.index, r.node_id, r.served_model, r.event.dropped,
             repr(r.event.finish_s))
            for r in report.responses
        ]

    first = _serve(
        chaos_plan="node-loss", retry_policy="deadline", spares=1
    )
    second = _serve(
        chaos_plan="node-loss", retry_policy="deadline", spares=1
    )
    assert digest(first) == digest(second)
    assert repr(first.stream.total_energy_j) == repr(
        second.stream.total_energy_j
    )


def test_lost_frames_show_in_slo_accounting():
    report = _serve(chaos_plan="node-loss")
    assert report.slo is not None
    lost = sum(stats.lost for stats in report.slo.classes.values())
    assert lost >= 1


def test_brownout_engages_under_region_outage():
    report = _serve(
        frames=200, chaos_plan="region-outage", brownout="standard"
    )
    brownout = report.brownout
    assert brownout is not None
    assert brownout.peak_tier >= 1
    assert brownout.transitions
    assert brownout.shed_frames >= 1
    assert sum(brownout.frames_by_tier) == report.stream.frames


def test_brownout_reduced_bits_serves_real_variants():
    """A floor-level ladder forces tier 3: frames serve at reduced bits."""
    harsh = BrownoutConfig(
        enter_pressure=(0.01, 0.02, 0.03, 1e9),
        dwell_s=1e-4,
        capacity_weight=0.0,
        pressure_ref_s=1e-5,
    )
    report = _serve(frames=200, brownout=harsh)
    brownout = report.brownout
    assert brownout.peak_tier == 3
    assert brownout.reduced_bits_frames >= 1
    reduced = [
        r for r in report.responses
        if r.served_model and "@brownout" in r.served_model
    ]
    assert len(reduced) == brownout.reduced_bits_frames
    assert all(not r.dropped and r.output is not None for r in reduced)


def test_reduced_variants_hidden_from_model_keys():
    server = FrameServer(
        num_nodes=1, micro_batch=8, seed=0, brownout="standard"
    )
    scenario = build_scenario("chaos", frames=8, offered_fps=500.0, seed=0)
    for key, model in scenario.models.items():
        server.register_model(key, model)
    server.warmup()
    server.serve_scenario(scenario)
    assert all("@brownout" not in key for key in server.model_keys)


def test_disabled_failover_is_bit_identical_to_plain_server():
    frames = np.random.default_rng(11).uniform(0.0, 1.0, (32, 1, 28, 28))

    def run(**kwargs):
        from repro.nn.models import build_lenet

        server = FrameServer(num_nodes=2, micro_batch=8, seed=0, **kwargs)
        server.register_model("a", build_lenet(seed=0))
        return server.serve_frames(frames, "a", offered_fps=1200.0)

    plain = run()
    gated = run(retry_policy=None, spares=0, brownout=None)
    assert gated.resilience is None and gated.brownout is None
    assert plain.stream.total_energy_j == gated.stream.total_energy_j
    for left, right in zip(plain.responses, gated.responses):
        assert left.event == right.event
        if left.output is not None:
            np.testing.assert_array_equal(left.output, right.output)
