"""Tests for repro.sim.accuracy — the Fig. 7 loop (tiny scale for speed)."""

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticSpec, generate_dataset
from repro.datasets.catalog import Dataset
from repro.nn.models import FirstLayerConfig
from repro.sim.accuracy import (
    TABLE2_CONFIGS,
    Table2Settings,
    evaluate_hardware_accuracy,
    run_cell,
    run_table2,
    train_qat_model,
)


def _tiny_dataset(seed=0):
    spec = SyntheticSpec(
        name="tiny",
        num_classes=4,
        image_size=12,
        channels=1,
        train_size=160,
        test_size=80,
        noise_sigma=0.05,
        jitter_px=1,
        clutter=0.05,
        seed=seed,
    )
    x_train, y_train, x_test, y_test = generate_dataset(spec)
    return Dataset(
        name="tiny",
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        num_classes=4,
        image_size=12,
        channels=1,
        paper_model="LeNet",
    )


def _tiny_settings():
    return Table2Settings(dataset_scale=1.0, epochs=2, batch_size=32, seed=0)


def test_train_qat_model_learns():
    dataset = _tiny_dataset()
    model, accuracy = train_qat_model(
        dataset, FirstLayerConfig(weight_bits=2), _tiny_settings()
    )
    assert accuracy > 0.5  # far above the 0.25 chance level


def test_hardware_accuracy_close_to_software():
    dataset = _tiny_dataset()
    settings = _tiny_settings()
    model, software = train_qat_model(
        dataset, FirstLayerConfig(weight_bits=2), settings
    )
    hardware, weight_error = evaluate_hardware_accuracy(
        model, dataset, weight_bits=2, oisa_seed=7
    )
    assert 0.0 < weight_error < 0.1
    assert hardware > software - 0.25  # hardware noise costs a few points


def test_run_cell_baseline_has_no_hardware_pass():
    dataset = _tiny_dataset()
    result = run_cell(
        dataset, FirstLayerConfig(weight_bits=None, ternary_input=False), _tiny_settings()
    )
    assert result.hardware_accuracy is None
    assert result.config_label == "baseline"
    assert result.reported_accuracy == result.software_accuracy


def test_run_cell_quantized_reports_hardware():
    dataset = _tiny_dataset()
    result = run_cell(dataset, FirstLayerConfig(weight_bits=3), _tiny_settings())
    assert result.hardware_accuracy is not None
    assert result.reported_accuracy == result.hardware_accuracy
    assert result.config_label == "[3:2]"


def test_table2_configs_order():
    labels = [config.label for config in TABLE2_CONFIGS]
    assert labels == ["baseline", "[4:2]", "[3:2]", "[2:2]", "[1:2]"]


def test_run_table2_cache_roundtrip(tmp_path):
    cache_file = str(tmp_path / "cache.json")
    settings = Table2Settings(
        dataset_scale=0.05, epochs=1, batch_size=32, seed=0
    )
    configs = (FirstLayerConfig(weight_bits=2),)
    first = run_table2(
        settings=settings,
        datasets=("mnist",),
        configs=configs,
        cache_path=cache_file,
    )
    second = run_table2(
        settings=settings,
        datasets=("mnist",),
        configs=configs,
        cache_path=cache_file,
    )
    assert len(first) == len(second) == 1
    assert first[0] == second[0]  # served from cache, identical record
