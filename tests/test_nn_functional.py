"""Tests for repro.nn.functional — conv/pool kernels against references."""

import numpy as np
import pytest

from repro.nn import functional as F


def _naive_conv2d(x, w, b, stride, padding):
    n, c, h, wd = x.shape
    f, _, kh, kw = w.shape
    x = F.pad_nchw(x, padding)
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (wd + 2 * padding - kw) // stride + 1
    out = np.zeros((n, f, oh, ow))
    for ni in range(n):
        for fi in range(f):
            for oy in range(oh):
                for ox in range(ow):
                    patch = x[ni, :, oy * stride : oy * stride + kh, ox * stride : ox * stride + kw]
                    out[ni, fi, oy, ox] = (patch * w[fi]).sum()
            if b is not None:
                out[ni, fi] += b[fi]
    return out


@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
def test_conv2d_matches_naive(stride, padding):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 3, 7, 7))
    w = rng.normal(size=(4, 3, 3, 3))
    b = rng.normal(size=4)
    out, _ = F.conv2d_forward(x, w, b, stride, padding)
    expected = _naive_conv2d(x, w, b, stride, padding)
    np.testing.assert_allclose(out, expected, atol=1e-10)


def test_conv_output_size():
    assert F.conv_output_size(32, 3, 1, 1) == 32
    assert F.conv_output_size(32, 3, 2, 1) == 16
    assert F.conv_output_size(28, 5, 1, 2) == 28
    with pytest.raises(ValueError):
        F.conv_output_size(2, 5, 1, 0)


def test_im2col_col2im_adjoint():
    # <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity.
    rng = np.random.default_rng(1)
    x = rng.normal(size=(2, 3, 6, 6))
    cols = F.im2col(x, 3, 3, 2, 1)
    y = rng.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    x_back = F.col2im(y, x.shape, 3, 3, 2, 1)
    rhs = float((x * x_back).sum())
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_conv2d_backward_finite_difference():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(2, 2, 5, 5))
    w = rng.normal(size=(3, 2, 3, 3))
    b = rng.normal(size=3)
    out, cols = F.conv2d_forward(x, w, b, 1, 1)
    grad_out = rng.normal(size=out.shape)
    grad_x, grad_w, grad_b = F.conv2d_backward(
        grad_out, cols, x.shape, w, 1, 1, with_bias=True
    )

    def loss(x_, w_, b_):
        out_, _ = F.conv2d_forward(x_, w_, b_, 1, 1)
        return float((out_ * grad_out).sum())

    eps = 1e-6
    for array, grad, name in ((x, grad_x, "x"), (w, grad_w, "w"), (b, grad_b, "b")):
        flat = array.reshape(-1)
        index = 3 % flat.size
        flat[index] += eps
        plus = loss(x, w, b)
        flat[index] -= 2 * eps
        minus = loss(x, w, b)
        flat[index] += eps
        numeric = (plus - minus) / (2 * eps)
        assert grad.reshape(-1)[index] == pytest.approx(numeric, rel=1e-5), name


def test_maxpool_forward_and_routing():
    x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    out, arg = F.maxpool2d_forward(x, 2, 2)
    assert out[0, 0, 0, 0] == 4.0
    grad = F.maxpool2d_backward(np.ones_like(out), arg, x.shape, 2, 2)
    expected = np.array([[[[0.0, 0.0], [0.0, 1.0]]]])
    np.testing.assert_array_equal(grad, expected)


def test_maxpool_finite_difference():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(2, 2, 6, 6))
    out, arg = F.maxpool2d_forward(x, 2, 2)
    grad_out = rng.normal(size=out.shape)
    grad_x = F.maxpool2d_backward(grad_out, arg, x.shape, 2, 2)
    eps = 1e-6
    index = (0, 1, 2, 3)
    x[index] += eps
    plus = float((F.maxpool2d_forward(x, 2, 2)[0] * grad_out).sum())
    x[index] -= 2 * eps
    minus = float((F.maxpool2d_forward(x, 2, 2)[0] * grad_out).sum())
    x[index] += eps
    assert grad_x[index] == pytest.approx((plus - minus) / (2 * eps), abs=1e-5)


def test_avgpool_roundtrip():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(1, 2, 4, 4))
    out = F.avgpool2d_forward(x, 2, 2)
    assert out.shape == (1, 2, 2, 2)
    assert out[0, 0, 0, 0] == pytest.approx(x[0, 0, :2, :2].mean())
    grad = F.avgpool2d_backward(np.ones_like(out), x.shape, 2, 2)
    np.testing.assert_allclose(grad, 0.25)


def test_softmax_rows_sum_to_one():
    rng = np.random.default_rng(5)
    logits = rng.normal(size=(8, 10)) * 50  # large values: stability test
    probs = F.softmax(logits)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)
    assert np.all(probs >= 0.0)
