"""Tests for repro.analysis.report — the one-shot report generator."""

import os

from repro.analysis.report import generate_report, write_report


def test_report_contains_all_cheap_sections():
    text = generate_report()
    for heading in (
        "# OISA reproduction report",
        "## Headline claims",
        "## Fig. 4(b)",
        "## Fig. 8",
        "## Fig. 9",
        "## Table I",
    ):
        assert heading in text
    # No Table II section without a cache file.
    assert "## Table II" not in text


def test_report_skips_missing_table2_cache(tmp_path):
    text = generate_report(table2_cache=str(tmp_path / "missing.json"))
    assert "## Table II" not in text


def test_write_report_roundtrip(tmp_path):
    path = str(tmp_path / "report.md")
    returned = write_report(path)
    assert returned == path
    assert os.path.exists(path)
    with open(path) as handle:
        assert "OISA reproduction report" in handle.read()
