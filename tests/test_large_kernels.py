"""End-to-end coverage of the 5x5 and 7x7 kernel paths (bank-spanning)."""

import numpy as np
import pytest

from repro.core.accelerator import OISAAccelerator
from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel
from repro.core.mapping import ConvWorkload, plan_convolution
from repro.nn.functional import conv2d_forward
from repro.sim.simulator import InHouseSimulator


@pytest.mark.parametrize("kernel,expected_macs", [(5, 2000), (7, 3920)])
def test_large_kernel_programs_and_computes(kernel, expected_macs):
    oisa = OISAAccelerator(seed=0, enable_noise=False)
    rng = np.random.default_rng(kernel)
    weights = rng.normal(size=(8, 1, kernel, kernel)) * 0.1
    programmed = oisa.program_conv(weights, padding=kernel // 2)
    assert oisa.plan.macs_per_cycle == expected_macs
    assert oisa.plan.kernels_per_bank == 1
    assert oisa.plan.arms_per_kernel == 5

    frame = rng.uniform(0, 1, (1, 128, 128))
    result = oisa.process_frame(frame)
    assert result.features.shape == (8, 128, 128)
    # Noise disabled: features equal the realized-weight convolution.
    symbols = oisa.vam.encode(frame[None]).astype(float) / 2.0
    expected, _ = conv2d_forward(
        symbols, programmed.realized, None, 1, kernel // 2
    )
    np.testing.assert_allclose(result.features, expected[0], atol=1e-12)


def test_large_kernel_crosstalk_chunks_across_arms():
    # 25 weights span 3 arms of 10 MRs; crosstalk must chunk consistently.
    from repro.core.opc import OpticalProcessingCore
    from repro.nn.quant import UniformWeightQuantizer

    rng = np.random.default_rng(1)
    weights = rng.normal(size=(4, 1, 5, 5)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    quantized = quantizer.quantize(weights)
    opc = OpticalProcessingCore(OISAConfig(), seed=2, enable_read_noise=False)
    programmed = opc.program(quantized, quantizer.scale(weights))
    assert programmed.realized.shape == weights.shape
    assert 0.0 < programmed.weight_error_relative < 0.1


@pytest.mark.parametrize("kernel", [5, 7])
def test_large_kernel_simulator_reports(kernel):
    simulator = InHouseSimulator()
    workload = ConvWorkload(kernel, 16, 1, 64, 64, padding=kernel // 2)
    report = simulator.simulate_oisa_conv(workload)
    plan = plan_convolution(OISAConfig(), workload)
    assert report.compute_cycles == plan.compute_cycles
    assert report.frame_energy_j > 0.0


def test_vom_energy_charged_for_bank_spanning_kernels():
    model = OISAEnergyModel(OISAConfig())
    small = plan_convolution(OISAConfig(), ConvWorkload(3, 8, 1, 64, 64, padding=1))
    large = plan_convolution(OISAConfig(), ConvWorkload(5, 8, 1, 64, 64, padding=2))
    small_energy = model.frame_energy_j(small)
    large_energy = model.frame_energy_j(large)
    # Per output, the 5x5 kernel needs 5-arm combining vs none for 3x3.
    small_vom = small_energy.components["vom"]
    large_vom = large_energy.components["vom"]
    assert large_vom > small_vom


def test_kernel_bank_energy_included_in_mapping():
    model = OISAEnergyModel(OISAConfig())
    plan = plan_convolution(OISAConfig(), ConvWorkload(3, 64, 3, 128, 128, padding=1))
    first_frame = model.frame_energy_j(plan, include_mapping=True)
    assert "kernel_bank" in first_frame.components
    assert first_frame.components["kernel_bank"] > 0.0
    steady = model.frame_energy_j(plan)
    assert "kernel_bank" not in steady.components
