"""Tests for repro.util.parallel — the ordered fan-out contract."""

import time

import pytest

from repro.util import BACKENDS, ParallelConfig, available_cores, parallel_map


def _square(x):
    return x * x


def _inverse_cost(x):
    """Later tasks finish *first* — exposes completion-order merges."""
    time.sleep(0.002 * (8 - x))
    return x


def _raise_on_three(x):
    if x == 3:
        raise ValueError("task three blew up")
    return x


# --------------------------------------------------------------------------
# ParallelConfig
# --------------------------------------------------------------------------
def test_backends_tuple():
    assert BACKENDS == ("serial", "thread", "process")


def test_default_config_is_serial():
    config = ParallelConfig()
    assert config.backend == "serial"
    assert config.is_serial
    assert config.effective_backend == "serial"


def test_invalid_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        ParallelConfig(backend="mpi")


@pytest.mark.parametrize("workers", [0, -2])
def test_nonpositive_workers_rejected(workers):
    with pytest.raises(ValueError, match="workers"):
        ParallelConfig(backend="thread", workers=workers)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_one_worker_pins_to_serial(backend):
    """``--workers 1`` is the serial path, not a one-worker pool."""
    config = ParallelConfig(backend=backend, workers=1)
    assert config.effective_backend == "serial"
    assert config.is_serial


def test_none_workers_resolve_to_cores():
    config = ParallelConfig(backend="process")
    assert config.resolve_workers() == available_cores()


def test_available_cores_positive():
    assert available_cores() >= 1


# --------------------------------------------------------------------------
# parallel_map
# --------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_map_matches_serial_loop(backend):
    tasks = list(range(17))
    expected = [_square(t) for t in tasks]
    result = parallel_map(
        _square, tasks, ParallelConfig(backend=backend, workers=2)
    )
    assert result == expected


def test_none_config_runs_serially():
    assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]


def test_generator_tasks_materialized():
    result = parallel_map(
        _square, (i for i in range(5)), ParallelConfig("thread", workers=2)
    )
    assert result == [0, 1, 4, 9, 16]


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_and_singleton_task_lists(backend):
    config = ParallelConfig(backend=backend, workers=2)
    assert parallel_map(_square, [], config) == []
    assert parallel_map(_square, [6], config) == [36]


def test_merge_is_task_order_not_completion_order():
    """Thread pool with inverted task costs still merges in task order."""
    tasks = list(range(8))
    result = parallel_map(
        _inverse_cost, tasks, ParallelConfig("thread", workers=4)
    )
    assert result == tasks


@pytest.mark.parametrize("backend", BACKENDS)
def test_task_exception_propagates(backend):
    with pytest.raises(ValueError, match="task three blew up"):
        parallel_map(
            _raise_on_three, range(6), ParallelConfig(backend=backend, workers=2)
        )


def test_workers_one_runs_in_caller_process():
    """The serial pin means no pool: closures (unpicklable) still work."""
    seen = []

    def record(x):  # closure — would not pickle under a real process pool
        seen.append(x)
        return x

    result = parallel_map(
        record, [1, 2, 3], ParallelConfig("process", workers=1)
    )
    assert result == [1, 2, 3]
    assert seen == [1, 2, 3]
