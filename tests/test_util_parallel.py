"""Tests for repro.util.parallel — the ordered fan-out contract."""

import os
import pickle
import time

import numpy as np
import pytest

from repro.util import (
    BACKENDS,
    START_METHOD,
    ParallelConfig,
    active_pools,
    available_cores,
    parallel_map,
    pool_scope,
    shutdown_pools,
    warm_pools,
)
from repro.util import shm


def _square(x):
    return x * x


def _worker_pid(_x):
    return os.getpid()


#: Spawn-pin canary: a fork child inherits the parent's mutated module
#: state; a spawn child re-imports this module fresh and sees False.
_SPAWN_CANARY = {"mutated": False}


def _read_canary(_x):
    return _SPAWN_CANARY["mutated"]


def _double_array(arr):
    return arr * 2.0


def _inverse_cost(x):
    """Later tasks finish *first* — exposes completion-order merges."""
    time.sleep(0.002 * (8 - x))
    return x


def _raise_on_three(x):
    if x == 3:
        raise ValueError("task three blew up")
    return x


# --------------------------------------------------------------------------
# ParallelConfig
# --------------------------------------------------------------------------
def test_backends_tuple():
    assert BACKENDS == ("serial", "thread", "process")


def test_default_config_is_serial():
    config = ParallelConfig()
    assert config.backend == "serial"
    assert config.is_serial
    assert config.effective_backend == "serial"


def test_invalid_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        ParallelConfig(backend="mpi")


@pytest.mark.parametrize("workers", [0, -2])
def test_nonpositive_workers_rejected(workers):
    with pytest.raises(ValueError, match="workers"):
        ParallelConfig(backend="thread", workers=workers)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_one_worker_pins_to_serial(backend):
    """``--workers 1`` is the serial path, not a one-worker pool."""
    config = ParallelConfig(backend=backend, workers=1)
    assert config.effective_backend == "serial"
    assert config.is_serial


def test_none_workers_resolve_to_cores():
    config = ParallelConfig(backend="process")
    assert config.resolve_workers() == available_cores()


def test_available_cores_positive():
    assert available_cores() >= 1


# --------------------------------------------------------------------------
# parallel_map
# --------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_map_matches_serial_loop(backend):
    tasks = list(range(17))
    expected = [_square(t) for t in tasks]
    result = parallel_map(
        _square, tasks, ParallelConfig(backend=backend, workers=2)
    )
    assert result == expected


def test_none_config_runs_serially():
    assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]


def test_generator_tasks_materialized():
    result = parallel_map(
        _square, (i for i in range(5)), ParallelConfig("thread", workers=2)
    )
    assert result == [0, 1, 4, 9, 16]


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_and_singleton_task_lists(backend):
    config = ParallelConfig(backend=backend, workers=2)
    assert parallel_map(_square, [], config) == []
    assert parallel_map(_square, [6], config) == [36]


def test_merge_is_task_order_not_completion_order():
    """Thread pool with inverted task costs still merges in task order."""
    tasks = list(range(8))
    result = parallel_map(
        _inverse_cost, tasks, ParallelConfig("thread", workers=4)
    )
    assert result == tasks


@pytest.mark.parametrize("backend", BACKENDS)
def test_task_exception_propagates(backend):
    with pytest.raises(ValueError, match="task three blew up"):
        parallel_map(
            _raise_on_three, range(6), ParallelConfig(backend=backend, workers=2)
        )


def test_workers_one_runs_in_caller_process():
    """The serial pin means no pool: closures (unpicklable) still work."""
    seen = []

    def record(x):  # closure — would not pickle under a real process pool
        seen.append(x)
        return x

    result = parallel_map(
        record, [1, 2, 3], ParallelConfig("process", workers=1)
    )
    assert result == [1, 2, 3]
    assert seen == [1, 2, 3]


# --------------------------------------------------------------------------
# Chunking
# --------------------------------------------------------------------------
@pytest.mark.parametrize("chunksize", [0, -3])
def test_nonpositive_chunksize_rejected(chunksize):
    with pytest.raises(ValueError, match="chunksize"):
        ParallelConfig("thread", workers=2, chunksize=chunksize)


def test_negative_shm_min_bytes_rejected():
    with pytest.raises(ValueError, match="shm_min_bytes"):
        ParallelConfig("process", workers=2, shm_min_bytes=-1)


def test_explicit_chunksize_wins():
    config = ParallelConfig("thread", workers=2, chunksize=7)
    assert config.resolve_chunksize(100) == 7


def test_derived_chunksize_targets_four_chunks_per_worker():
    config = ParallelConfig("thread", workers=2)
    # 16 tasks / (2 workers * 4) -> 2 per chunk.
    assert config.resolve_chunksize(16) == 2
    # Fewer tasks than workers: busy workers clamp to the task count.
    assert config.resolve_chunksize(1) == 1
    assert ParallelConfig("thread", workers=8).resolve_chunksize(4) == 1


def test_chunked_map_preserves_order():
    tasks = list(range(23))
    result = parallel_map(
        _square, tasks, ParallelConfig("thread", workers=3, chunksize=5)
    )
    assert result == [t * t for t in tasks]


# --------------------------------------------------------------------------
# Persistent pool registry
# --------------------------------------------------------------------------
def test_thread_pool_persists_across_calls():
    with pool_scope():
        config = ParallelConfig("thread", workers=2)
        parallel_map(_square, range(4), config)
        assert ("thread", 2) in active_pools()
        before = active_pools()
        parallel_map(_square, range(4), config)
        assert active_pools() == before
    assert active_pools() == ()  # pool_scope tore everything down


def test_shutdown_pools_counts_and_clears():
    with pool_scope():
        parallel_map(_square, range(4), ParallelConfig("thread", workers=2))
        parallel_map(_square, range(4), ParallelConfig("thread", workers=3))
        assert ("thread", 2) in active_pools()
        assert ("thread", 3) in active_pools()
        assert shutdown_pools() == 2
        assert active_pools() == ()
        assert shutdown_pools() == 0  # idempotent


def test_serial_configs_never_create_pools():
    with pool_scope():
        parallel_map(_square, range(4), None)
        parallel_map(_square, range(4), ParallelConfig("process", workers=1))
        warm_pools(None)
        warm_pools(ParallelConfig())
        assert active_pools() == ()


def test_process_pool_spawn_pin_and_reuse():
    """One spawned pool serves repeated maps; children are spawn-fresh."""
    assert START_METHOD == "spawn"
    with pool_scope():
        config = ParallelConfig("process", workers=2)
        _SPAWN_CANARY["mutated"] = True
        try:
            # fork children would inherit the mutation; spawn children
            # re-import this module and see the pristine False.
            assert parallel_map(_read_canary, range(4), config) == [False] * 4
        finally:
            _SPAWN_CANARY["mutated"] = False
        assert ("process", 2) in active_pools()
        pids = set(parallel_map(_worker_pid, range(8), config))
        pids |= set(parallel_map(_worker_pid, range(8), config))
        # Two maps, one persistent 2-worker pool: no third process ever.
        assert len(pids) <= 2
        assert os.getpid() not in pids


def test_warm_pools_prespawns_the_process_pool():
    with pool_scope():
        config = ParallelConfig("process", workers=2)
        warm_pools(config)
        assert ("process", 2) in active_pools()
        started = time.perf_counter()
        assert parallel_map(_square, range(6), config) == [
            0, 1, 4, 9, 16, 25,
        ]
        reused_s = time.perf_counter() - started
        # A cold spawn costs ~1s; a warmed pool answers in well under it.
        assert reused_s < 0.75


# --------------------------------------------------------------------------
# Shared-memory transport
# --------------------------------------------------------------------------
def test_shm_and_pickle_transport_bit_identical():
    """Forced-shm and shm-off process maps both match the serial loop."""
    rng = np.random.default_rng(7)
    tasks = [rng.normal(size=(64, 257)) for _ in range(4)]  # ~132 KB each
    expected = [_double_array(t) for t in tasks]
    with pool_scope():
        for config in (
            ParallelConfig("process", workers=2, shm_min_bytes=1),
            ParallelConfig("process", workers=2, shm_min_bytes=None),
        ):
            result = parallel_map(_double_array, tasks, config)
            for ours, ref in zip(result, expected):
                assert ours.dtype == ref.dtype and np.array_equal(ours, ref)


def test_shm_map_leaves_no_segments_behind():
    if not shm.shm_available():
        pytest.skip("no multiprocessing.shared_memory on this platform")
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        pytest.skip("no /dev/shm to observe segment lifetime in")
    rng = np.random.default_rng(11)
    tasks = [rng.normal(size=(64, 257)) for _ in range(3)]
    def ndarray_segments():
        # SharedMemory names start with "psm_"; the pool's own sem.mp-*
        # semaphores live in the same directory and are not ours.
        return {n for n in os.listdir(shm_dir) if n.startswith("psm_")}

    with pool_scope():
        before = ndarray_segments()
        parallel_map(
            _double_array,
            tasks,
            ParallelConfig("process", workers=2, shm_min_bytes=1),
        )
        leaked = ndarray_segments() - before
    assert leaked == set()


# --------------------------------------------------------------------------
# repro.util.shm unit round-trips (no worker processes)
# --------------------------------------------------------------------------
pytestmark_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable"
)


@pytestmark_shm
def test_shm_dumps_spills_only_large_simple_arrays():
    big = np.arange(4096, dtype=np.float64)
    small = np.arange(4, dtype=np.float64)
    boxed = np.array([{"not": "numeric"}, None], dtype=object)
    payload = shm.dumps(
        {"big": big, "small": small, "boxed": boxed}, min_bytes=1024
    )
    try:
        assert len(payload.segments) == 1  # big only
        obj, attachments = shm.loads(payload.blob)
        assert attachments == []
        assert np.array_equal(obj["big"], big)
        assert np.array_equal(obj["small"], small)
        assert obj["boxed"][0] == {"not": "numeric"}
    finally:
        shm.unlink_segments(payload.segments)


@pytestmark_shm
def test_shm_roundtrip_copy_unlink_removes_segments():
    big = np.random.default_rng(3).normal(size=(256, 16))
    payload = shm.dumps([big, "tag"], min_bytes=1)
    obj, attachments = shm.loads(payload.blob, copy=True, unlink=True)
    assert attachments == []
    assert np.array_equal(obj[0], big) and obj[1] == "tag"
    # unlink=True already removed the segments: nothing left to unlink.
    shm.unlink_segments(payload.segments)
    obj2 = None
    with pytest.raises(Exception):
        obj2, _ = shm.loads(payload.blob, copy=True)
    assert obj2 is None


@pytestmark_shm
def test_shm_zero_copy_views_are_readonly():
    big = np.arange(2048, dtype=np.int64)
    payload = shm.dumps(big, min_bytes=1)
    try:
        view, attachments = shm.loads(payload.blob, copy=False)
        assert np.array_equal(view, big)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = -1
        del view
        shm.close_attachments(attachments)
    finally:
        shm.unlink_segments(payload.segments)


@pytestmark_shm
def test_shm_same_array_spills_one_segment():
    big = np.random.default_rng(5).normal(size=1024)
    payload = shm.dumps((big, big), min_bytes=1)
    try:
        assert len(payload.segments) == 1
        (first, second), _ = shm.loads(payload.blob, copy=True)
        assert np.array_equal(first, big) and np.array_equal(second, big)
    finally:
        shm.unlink_segments(payload.segments)


@pytestmark_shm
def test_vanilla_pickle_blob_decodes_through_loads():
    blob = pickle.dumps({"plain": [1, 2, 3]})
    obj, attachments = shm.loads(blob)
    assert obj == {"plain": [1, 2, 3]}
    assert attachments == []
