"""Tests for repro.nn.layers — gradient checks for every layer."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    Parameter,
    ReLU,
    Residual,
    Sequential,
)


def _layer_grad_check(layer, x, training=True, atol=1e-5):
    """Check input and parameter gradients against central differences."""
    rng = np.random.default_rng(99)
    out = layer.forward(x, training=training)
    grad_out = rng.normal(size=out.shape)
    layer.zero_grad()
    grad_x = layer.backward(grad_out)

    def loss():
        return float((layer.forward(x, training=training) * grad_out).sum())

    eps = 1e-6
    # Input gradient at a few positions.
    flat_x = x.reshape(-1)
    for index in np.linspace(0, flat_x.size - 1, 3, dtype=int):
        flat_x[index] += eps
        plus = loss()
        flat_x[index] -= 2 * eps
        minus = loss()
        flat_x[index] += eps
        numeric = (plus - minus) / (2 * eps)
        assert grad_x.reshape(-1)[index] == pytest.approx(numeric, abs=atol)

    # Parameter gradients (recompute state after the input pokes).
    layer.zero_grad()
    layer.forward(x, training=training)
    layer.backward(grad_out)
    for parameter in layer.parameters():
        flat_p = parameter.data.reshape(-1)
        index = flat_p.size // 2
        analytic = parameter.grad.reshape(-1)[index]
        flat_p[index] += eps
        plus = loss()
        flat_p[index] -= 2 * eps
        minus = loss()
        flat_p[index] += eps
        numeric = (plus - minus) / (2 * eps)
        assert analytic == pytest.approx(numeric, abs=atol), parameter.name


def test_parameter_zero_grad():
    p = Parameter(np.ones((2, 2)))
    p.grad += 3.0
    p.zero_grad()
    np.testing.assert_array_equal(p.grad, 0.0)
    assert p.size == 4


def test_conv2d_gradients():
    rng = np.random.default_rng(0)
    layer = Conv2D(2, 3, 3, stride=1, padding=1, seed=0)
    _layer_grad_check(layer, rng.normal(size=(2, 2, 5, 5)))


def test_conv2d_strided_gradients():
    rng = np.random.default_rng(1)
    layer = Conv2D(2, 4, 3, stride=2, padding=1, seed=1)
    _layer_grad_check(layer, rng.normal(size=(2, 2, 8, 8)))


def test_dense_gradients():
    rng = np.random.default_rng(2)
    layer = Dense(6, 4, seed=2)
    _layer_grad_check(layer, rng.normal(size=(3, 6)))


def test_relu_gradients():
    rng = np.random.default_rng(3)
    _layer_grad_check(ReLU(), rng.normal(size=(4, 5)) + 0.3)


def test_batchnorm_training_gradients():
    rng = np.random.default_rng(4)
    layer = BatchNorm2D(3)
    _layer_grad_check(layer, rng.normal(size=(4, 3, 4, 4)), training=True, atol=1e-4)


def test_batchnorm_normalises_in_training():
    rng = np.random.default_rng(5)
    layer = BatchNorm2D(2)
    x = rng.normal(loc=3.0, scale=2.0, size=(16, 2, 8, 8))
    out = layer.forward(x, training=True)
    assert out.mean(axis=(0, 2, 3)) == pytest.approx(np.zeros(2), abs=1e-10)
    assert out.std(axis=(0, 2, 3)) == pytest.approx(np.ones(2), rel=1e-3)


def test_batchnorm_running_stats_used_in_eval():
    rng = np.random.default_rng(6)
    layer = BatchNorm2D(2, momentum=1.0)  # adopt batch stats immediately
    x = rng.normal(loc=1.0, size=(8, 2, 4, 4))
    layer.forward(x, training=True)
    out = layer.forward(x, training=False)
    assert out.mean() == pytest.approx(0.0, abs=0.05)


def test_maxpool_layer_gradients():
    rng = np.random.default_rng(7)
    _layer_grad_check(MaxPool2D(2), rng.normal(size=(2, 2, 6, 6)))


def test_avgpool_layer_gradients():
    rng = np.random.default_rng(8)
    _layer_grad_check(AvgPool2D(2), rng.normal(size=(2, 2, 6, 6)))


def test_global_avgpool_gradients():
    rng = np.random.default_rng(9)
    _layer_grad_check(GlobalAvgPool2D(), rng.normal(size=(3, 4, 5, 5)))


def test_flatten_roundtrip():
    rng = np.random.default_rng(10)
    layer = Flatten()
    x = rng.normal(size=(2, 3, 4, 4))
    out = layer.forward(x)
    assert out.shape == (2, 48)
    grad = layer.backward(np.ones_like(out))
    assert grad.shape == x.shape


def test_sequential_gradients():
    rng = np.random.default_rng(11)
    model = Sequential(
        [Conv2D(1, 2, 3, padding=1, seed=3), ReLU(), Flatten(), Dense(2 * 16, 3, seed=4)]
    )
    _layer_grad_check(model, rng.normal(size=(2, 1, 4, 4)))


def test_residual_identity_gradients():
    rng = np.random.default_rng(12)
    block = Residual(
        Sequential([Conv2D(2, 2, 3, padding=1, use_bias=False, seed=5), BatchNorm2D(2)])
    )
    _layer_grad_check(block, rng.normal(size=(2, 2, 4, 4)), atol=1e-4)


def test_residual_projection_gradients():
    rng = np.random.default_rng(13)
    block = Residual(
        Sequential([Conv2D(2, 4, 3, stride=2, padding=1, use_bias=False, seed=6), BatchNorm2D(4)]),
        shortcut=Sequential([Conv2D(2, 4, 1, stride=2, use_bias=False, seed=7), BatchNorm2D(4)]),
    )
    _layer_grad_check(block, rng.normal(size=(2, 2, 4, 4)), atol=1e-4)


def test_residual_shape_mismatch_raises():
    block = Residual(Conv2D(2, 4, 3, padding=1, seed=8))
    with pytest.raises(ValueError):
        block.forward(np.zeros((1, 2, 4, 4)))


def test_backward_before_forward_raises():
    for layer in (Conv2D(1, 1, 3), Dense(2, 2), ReLU(), BatchNorm2D(1), MaxPool2D()):
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1)))


def test_num_parameters():
    model = Sequential([Conv2D(1, 2, 3, use_bias=True), Dense(4, 3)])
    # conv: 2*1*3*3 + 2 = 20; dense: 3*4 + 3 = 15.
    assert model.num_parameters() == 35
