"""Tests for repro.analysis — the per-figure/table harnesses."""

import numpy as np
import pytest

from repro.analysis.claims import build_claims, render_claims
from repro.analysis.fig4 import build_fig4, render_fig4
from repro.analysis.fig8 import build_fig8, render_fig8
from repro.analysis.fig9 import BIT_CONFIGS, build_fig9, render_fig9
from repro.analysis.table1 import build_oisa_row, build_table1, render_table1


# --------------------------------------------------------------------------
# Fig. 4
# --------------------------------------------------------------------------
def test_fig4_sixteen_levels():
    data = build_fig4()
    assert data.num_levels == 16
    assert data.monotonic
    assert 330 < data.max_current_ua < 430


def test_fig4_staircase_spans_window():
    data = build_fig4()
    assert data.times_ns[-1] == pytest.approx(16.0)
    # Current rises through the sweep.
    assert data.current_ua[-10] > data.current_ua[10]


def test_fig4_render_mentions_codes():
    text = render_fig4()
    assert '"0000"' in text and '"1111"' in text
    assert "monotonic: True" in text


# --------------------------------------------------------------------------
# Fig. 8
# --------------------------------------------------------------------------
def test_fig8_paper_symbol_pattern():
    data = build_fig8()
    assert data.symbols == [2, 1, 0]
    assert data.t1 == [1, 1, 0]
    assert data.t2 == [1, 0, 0]


def test_fig8_voltages_in_declared_regions():
    data = build_fig8()
    assert data.pixel_voltages_v[0] > data.vref_high_v
    assert data.vref_low_v < data.pixel_voltages_v[1] < data.vref_high_v
    assert data.pixel_voltages_v[2] < data.vref_low_v


def test_fig8_render():
    text = render_fig8()
    assert "Out2" in text and "between" in text


# --------------------------------------------------------------------------
# Fig. 9
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig9():
    return build_fig9()


def test_fig9_platforms_and_series(fig9):
    assert set(fig9.power_w) == {"OISA", "Crosslight", "AppCip", "ASIC"}
    for series in fig9.power_w.values():
        assert len(series) == len(BIT_CONFIGS)


def test_fig9_oisa_always_lowest(fig9):
    oisa = np.asarray(fig9.power_w["OISA"])
    for name in ("Crosslight", "AppCip", "ASIC"):
        assert np.all(np.asarray(fig9.power_w[name]) > oisa)


def test_fig9_reductions_near_paper(fig9):
    assert fig9.reductions_vs_oisa["Crosslight"] == pytest.approx(8.3, rel=0.25)
    assert fig9.reductions_vs_oisa["AppCip"] == pytest.approx(7.9, rel=0.25)
    assert fig9.reductions_vs_oisa["ASIC"] == pytest.approx(18.4, rel=0.25)


def test_fig9_breakdown_semantics(fig9):
    # Crosslight pays ADC/DAC; OISA has neither (AWC/VAM instead).
    crosslight = fig9.breakdowns["Crosslight"][-1]
    assert "adc" in crosslight and "dac" in crosslight
    oisa = fig9.breakdowns["OISA"][-1]
    assert "adc" not in oisa and "dac" not in oisa
    assert "awc" in oisa


def test_fig9_render(fig9):
    text = render_fig9(fig9)
    assert "Crosslight" in text
    assert "paper" in text


# --------------------------------------------------------------------------
# Table I / claims
# --------------------------------------------------------------------------
def test_table1_oisa_row_values():
    row = build_oisa_row()
    assert row["array_size"] == "128x128"
    assert float(row["efficiency_tops_per_watt"]) == pytest.approx(6.68, rel=0.03)
    assert 0.1 < float(row["power_mw"]) < 0.4


def test_table1_oisa_most_efficient_cnn_platform():
    data = build_table1()
    measured = float(data.oisa_row["efficiency_tops_per_watt"])
    for design in data.literature:
        if design.purpose == "1st-layer CNN":
            assert measured > design.efficiency_upper()


def test_table1_render_includes_all_rows():
    text = render_table1()
    assert "MACSEN" in text
    assert "OISA (measured)" in text
    assert "OISA (paper)" in text


def test_claims_all_hold():
    claims = build_claims(include_fig9=True)
    failing = [claim.name for claim in claims if not claim.holds]
    assert failing == []


def test_claims_render():
    text = render_claims(build_claims(include_fig9=False))
    assert "MACs/cycle K=3" in text
    assert "NO" not in text.split("holds")[-1] or True  # table renders
