"""Tests for repro.core.awc and repro.core.vam — architecture-level views."""

import numpy as np
import pytest

from repro.circuits.awc import AwcDesign
from repro.core.awc import AwcWeightMapper
from repro.core.vam import ActivationModulator


# --------------------------------------------------------------------------
# AwcWeightMapper
# --------------------------------------------------------------------------
def test_level_table_shape():
    mapper = AwcWeightMapper(num_units=40, seed=0)
    assert mapper.level_table.shape == (40, 16)
    assert mapper.num_levels == 16


def test_units_have_distinct_mismatch():
    mapper = AwcWeightMapper(num_units=4, seed=0)
    table = mapper.level_table
    assert not np.allclose(table[0], table[1])


def test_realize_codes_sign_symmetric():
    mapper = AwcWeightMapper(num_units=2, seed=1)
    codes = np.array([3, -3])
    units = np.array([0, 0])
    realized = mapper.realize_codes(codes, units)
    assert realized[0] == pytest.approx(-realized[1])


def test_realize_zero_code_exact():
    mapper = AwcWeightMapper(num_units=2, seed=1)
    realized = mapper.realize_codes(np.zeros(4, dtype=int))
    np.testing.assert_allclose(realized, 0.0)


def test_realized_levels_near_ideal():
    mapper = AwcWeightMapper(num_units=40, seed=2)
    codes = np.arange(16)
    realized = mapper.realize_codes(codes, np.zeros(16, dtype=int))
    assert np.max(np.abs(realized - codes)) < 1.5  # within ~1.5 LSB


def test_realize_quantized_weights_roundtrip_scale():
    mapper = AwcWeightMapper(num_units=40, seed=3)
    scale = 0.01
    quantized = np.array([0.0, 0.05, -0.15, 0.1])
    realized = mapper.realize_quantized_weights(quantized, scale)
    # Same sign pattern, same order of magnitude.
    np.testing.assert_array_equal(np.sign(realized), np.sign(quantized))
    assert np.abs(realized - quantized).max() < 3 * scale


def test_code_out_of_range_rejected():
    mapper = AwcWeightMapper(num_units=2, seed=0)
    with pytest.raises(ValueError):
        mapper.realize_codes(np.array([16]))


def test_unit_assignment_validation():
    mapper = AwcWeightMapper(num_units=2, seed=0)
    with pytest.raises(ValueError):
        mapper.realize_codes(np.array([1, 2]), np.array([0]))
    with pytest.raises(ValueError):
        mapper.realize_codes(np.array([1]), np.array([5]))


def test_error_metrics_positive():
    mapper = AwcWeightMapper(num_units=40, seed=4)
    assert mapper.mean_level_error_lsb() > 0.0
    assert mapper.worst_case_level_error_lsb() >= mapper.mean_level_error_lsb()


def test_separability_degrades_with_bits():
    # The paper's Table II mechanism: level gaps shrink at high bit-widths.
    base = AwcWeightMapper(AwcDesign(num_bits=2), num_units=10, seed=5)
    fine = base.with_bits(4, seed=5)
    assert fine.level_separability() < base.level_separability()


def test_same_seed_same_chip():
    a = AwcWeightMapper(num_units=4, seed=6).level_table
    b = AwcWeightMapper(num_units=4, seed=6).level_table
    np.testing.assert_array_equal(a, b)


# --------------------------------------------------------------------------
# ActivationModulator
# --------------------------------------------------------------------------
def test_encode_thresholds():
    vam = ActivationModulator()
    frame = np.array([0.1, 0.5, 0.9])
    np.testing.assert_array_equal(vam.encode(frame), [0, 1, 2])


def test_encode_preserves_shape():
    vam = ActivationModulator()
    frame = np.random.default_rng(0).uniform(0, 1, (3, 16, 16))
    assert vam.encode(frame).shape == (3, 16, 16)


def test_optical_power_monotone():
    vam = ActivationModulator()
    powers = vam.optical_powers_w(np.array([0.1, 0.5, 0.9]))
    assert powers[0] < powers[1] < powers[2]


def test_symbol_distribution_sums_to_one():
    vam = ActivationModulator()
    frame = np.random.default_rng(1).uniform(0, 1, (64, 64))
    distribution = vam.symbol_distribution(frame)
    assert distribution.sum() == pytest.approx(1.0)
    # Uniform input, thirds thresholds -> roughly equal symbol mix.
    np.testing.assert_allclose(distribution, 1 / 3, atol=0.05)


def test_frame_energy_scales_with_pixels():
    vam = ActivationModulator()
    small = vam.frame_energy_j(np.full((8, 8), 0.5), 1e-6)
    large = vam.frame_energy_j(np.full((16, 16), 0.5), 1e-6)
    assert large == pytest.approx(4 * small)


def test_brighter_frames_cost_more():
    vam = ActivationModulator()
    dark = vam.frame_energy_j(np.full((8, 8), 0.1), 1e-6)
    bright = vam.frame_energy_j(np.full((8, 8), 0.9), 1e-6)
    assert bright > dark  # higher symbols -> higher VCSEL currents


def test_average_power_definition():
    vam = ActivationModulator()
    frame = np.full((8, 8), 0.5)
    power = vam.average_power_w(frame, 1000.0)
    assert power == pytest.approx(vam.frame_energy_j(frame, 1e-3) * 1000.0)


def test_threshold_validation():
    with pytest.raises(ValueError):
        ActivationModulator(low_threshold=0.7, high_threshold=0.3)
