"""Tests for repro.photonics.photodiode — BPD subtraction and noise."""

import numpy as np
import pytest

from repro.photonics.photodiode import BalancedPhotodiode, Photodiode


@pytest.fixture
def pd():
    return Photodiode()


@pytest.fixture
def bpd():
    return BalancedPhotodiode()


def test_photocurrent_linear_in_power(pd):
    p1 = float(pd.photocurrent_a(1e-3))
    p2 = float(pd.photocurrent_a(2e-3))
    assert p2 - p1 == pytest.approx(pd.responsivity_a_per_w * 1e-3)


def test_dark_current_floor(pd):
    assert float(pd.photocurrent_a(0.0)) == pytest.approx(pd.dark_current_a)


def test_negative_power_rejected(pd):
    with pytest.raises(ValueError):
        pd.photocurrent_a(-1e-3)


def test_shot_noise_grows_with_power(pd):
    assert pd.shot_noise_sigma_a(1e-3) > pd.shot_noise_sigma_a(1e-6)


def test_thermal_noise_independent_of_power(pd):
    assert pd.thermal_noise_sigma_a() > 0.0


def test_bpd_subtraction(bpd):
    diff = float(bpd.differential_current_a(2e-3, 1e-3))
    expected = bpd.photodiode.responsivity_a_per_w * 1e-3
    assert diff == pytest.approx(expected)


def test_bpd_balanced_inputs_cancel(bpd):
    assert float(bpd.differential_current_a(1e-3, 1e-3)) == pytest.approx(0.0)


def test_bpd_read_statistics(bpd):
    pos = np.full(4000, 1e-3)
    neg = np.full(4000, 0.5e-3)
    samples = bpd.read(pos, neg, seed=3)
    mean = float(bpd.differential_current_a(1e-3, 0.5e-3))
    sigma = bpd.noise_sigma_a(1e-3, 0.5e-3)
    assert samples.mean() == pytest.approx(mean, abs=4 * sigma / np.sqrt(4000))
    assert samples.std() == pytest.approx(sigma, rel=0.1)


def test_bpd_read_deterministic_under_seed(bpd):
    pos = np.full(16, 1e-3)
    neg = np.zeros(16)
    a = bpd.read(pos, neg, seed=11)
    b = bpd.read(pos, neg, seed=11)
    np.testing.assert_array_equal(a, b)


def test_snr_increases_with_power(bpd):
    assert bpd.snr(1e-3, 0.0) > bpd.snr(1e-5, 0.0)


def test_effective_bits_reasonable(bpd):
    # The paper tunes the chain for ~4-bit effective resolution; our BPD
    # supports more than that at 100 uW, so 4 bits is conservative.
    enob = bpd.effective_bits(100e-6)
    assert enob > 4.0


def test_output_voltage_gain(bpd):
    assert float(bpd.output_voltage_v(1e-6)) == pytest.approx(bpd.tia_gain_ohm * 1e-6)
