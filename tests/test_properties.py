"""Property-based tests (hypothesis) on core invariants."""

import types

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.circuits.awc import AwcCircuit, AwcDesign
from repro.core.config import OISAConfig
from repro.core.mapping import ConvWorkload, macs_per_cycle, plan_convolution
from repro.engine.cache import WeightProgramCache
from repro.engine.router import HashModuloRouter, RendezvousRouter
from repro.nn import functional as F
from repro.nn.quant import TernaryActivation, UniformWeightQuantizer, ternarize
from repro.photonics.microring import MicroringResonator
from repro.util.tables import format_table

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


# --------------------------------------------------------------------------
# Quantizers
# --------------------------------------------------------------------------
@given(
    weights=arrays(np.float64, st.integers(1, 64), elements=finite_floats),
    bits=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_quantizer_idempotent(weights, bits):
    quantizer = UniformWeightQuantizer(bits)
    once = quantizer.quantize(weights)
    twice = quantizer.quantize(once)
    np.testing.assert_allclose(once, twice, atol=1e-9)


@given(
    weights=arrays(np.float64, st.integers(1, 64), elements=finite_floats),
    bits=st.integers(2, 4),
)
@settings(max_examples=60, deadline=None)
def test_quantizer_error_bounded(weights, bits):
    quantizer = UniformWeightQuantizer(bits)
    quantized = quantizer.quantize(weights)
    lsb = quantizer.scale(weights)
    assert np.max(np.abs(quantized - weights)) <= lsb / 2 + 1e-12


@given(
    weights=arrays(np.float64, st.integers(1, 64), elements=finite_floats),
    bits=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_quantizer_sign_preserved(weights, bits):
    quantizer = UniformWeightQuantizer(bits)
    quantized = quantizer.quantize(weights)
    # No quantized value flips sign (zero allowed for bits >= 2).
    assert np.all(quantized * weights >= -1e-12)


@given(
    x=arrays(
        np.float64,
        st.integers(1, 64),
        elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
)
@settings(max_examples=60, deadline=None)
def test_ternarize_monotone_and_bounded(x):
    symbols = ternarize(x)
    assert symbols.min() >= 0 and symbols.max() <= 2
    order = np.argsort(x)
    assert np.all(np.diff(symbols[order]) >= 0)  # monotone in intensity


@given(
    x=arrays(
        np.float64,
        st.integers(1, 32),
        elements=st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),
    )
)
@settings(max_examples=40, deadline=None)
def test_ternary_activation_ste_masks_out_of_range(x):
    act = TernaryActivation()
    act.forward(x)
    grad = act.backward(np.ones_like(x))
    outside = (x < 0.0) | (x > 1.0)
    assert np.all(grad[outside] == 0.0)


# --------------------------------------------------------------------------
# Microring
# --------------------------------------------------------------------------
@given(target=st.floats(min_value=0.01, max_value=0.999))
@settings(max_examples=60, deadline=None)
def test_microring_inversion_roundtrip(target):
    ring = MicroringResonator()
    if target < ring.min_transmission:
        target = ring.min_transmission
    shift = ring.detuning_for_transmission(target)
    assert shift >= 0.0
    recovered = float(ring.lorentzian_transmission(shift))
    assert abs(recovered - target) < 1e-9


@given(detuning=st.floats(min_value=-5e-9, max_value=5e-9, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_microring_transmission_bounded(detuning):
    ring = MicroringResonator()
    value = float(ring.lorentzian_transmission(detuning))
    assert ring.min_transmission - 1e-12 <= value <= 1.0 + 1e-12


# --------------------------------------------------------------------------
# AWC
# --------------------------------------------------------------------------
@given(bits=st.integers(1, 4), seed=st.integers(0, 50))
@settings(max_examples=40, deadline=None)
def test_awc_levels_start_at_zero_and_grow(bits, seed):
    circuit = AwcCircuit(AwcDesign(num_bits=bits), seed=seed)
    levels = circuit.all_levels_a()
    assert levels[0] == 0.0
    assert levels[-1] > 0.0
    # Full scale is pinned by the MR tuning range regardless of bits.
    assert levels.max() < 1.25 * circuit.design.full_scale_current_a


@given(seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_awc_inl_endpoints_zero(seed):
    circuit = AwcCircuit(seed=seed)
    inl = circuit.inl_lsb()
    assert abs(inl[0]) < 1e-9
    assert abs(inl[-1]) < 1e-9  # endpoint fit by construction


# --------------------------------------------------------------------------
# Mapping arithmetic
# --------------------------------------------------------------------------
@given(
    kernel=st.sampled_from([3, 5, 7]),
    kernels=st.integers(1, 512),
    channels=st.integers(1, 8),
    size=st.integers(16, 128),
)
@settings(max_examples=60, deadline=None)
def test_mapping_cycles_cover_workload(kernel, kernels, channels, size):
    cfg = OISAConfig()
    if size <= kernel:
        size = kernel + 1
    workload = ConvWorkload(kernel, kernels, channels, size, size)
    plan = plan_convolution(cfg, workload)
    # Enough cycles to cover all planes: resident planes per round x rounds
    # must reach the total plane count.
    assert plan.kernel_slots * plan.mapping_rounds >= kernels * channels
    assert plan.compute_cycles == workload.windows_per_channel * plan.mapping_rounds
    assert 0.0 < plan.mr_utilization <= 1.0


@given(kernel=st.sampled_from([3, 5, 7]))
@settings(max_examples=10, deadline=None)
def test_macs_per_cycle_formula(kernel):
    cfg = OISAConfig()
    n = 5 if kernel == 3 else 1
    assert macs_per_cycle(cfg, kernel) == cfg.num_banks * n * kernel**2


# --------------------------------------------------------------------------
# im2col
# --------------------------------------------------------------------------
@given(
    n=st.integers(1, 3),
    c=st.integers(1, 3),
    size=st.integers(4, 9),
    stride=st.integers(1, 2),
    padding=st.integers(0, 2),
)
@settings(max_examples=40, deadline=None)
def test_im2col_adjoint_property(n, c, size, stride, padding):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(n, c, size, size))
    cols = F.im2col(x, 3, 3, stride, padding)
    y = rng.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * F.col2im(y, x.shape, 3, 3, stride, padding)).sum())
    assert abs(lhs - rhs) < 1e-8 * max(1.0, abs(lhs))


# --------------------------------------------------------------------------
# Tables
# --------------------------------------------------------------------------
@given(
    rows=st.lists(
        st.tuples(st.integers(-1000, 1000), finite_floats), min_size=1, max_size=10
    )
)
@settings(max_examples=40, deadline=None)
def test_format_table_alignment_property(rows):
    text = format_table(("a", "b"), rows)
    lines = text.splitlines()
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # every line equally wide


# --------------------------------------------------------------------------
# Tenant routing (control plane)
# --------------------------------------------------------------------------
class _FakeShard:
    """Minimal :class:`repro.engine.router.ShardView` for router tests."""

    def __init__(self, name, hosted=(), draining=False, nodes=1):
        self.name = name
        self.hosted = set(hosted)
        self.draining = draining
        self.nodes = nodes  # routers must never read this

    def hosts(self, model_key):
        return model_key in self.hosted


_names = st.lists(
    st.text(alphabet="abcdefgh0123", min_size=1, max_size=6),
    min_size=1,
    max_size=6,
    unique=True,
)
_tenants = st.lists(
    st.text(alphabet="tuvwxyz0123456789:", min_size=1, max_size=10),
    min_size=1,
    max_size=12,
    unique=True,
)


@given(
    names=_names,
    tenants=_tenants,
    salt=st.integers(0, 2**32),
    router_cls=st.sampled_from([RendezvousRouter, HashModuloRouter]),
)
@settings(max_examples=60, deadline=None)
def test_routing_total_and_deterministic(names, tenants, salt, router_cls):
    """Every admitted (tenant, model) pair lands on exactly one shard,
    and two independently built routers with the same salt agree."""
    shards = [_FakeShard(name) for name in names]
    first = router_cls(salt=salt)
    second = router_cls(salt=salt)
    for tenant in tenants:
        target = first.route(tenant, "m", shards)
        assert target in shards  # exactly one, drawn from the fleet
        assert second.route(tenant, "m", shards) is target


@given(
    names=_names,
    tenants=_tenants,
    salt=st.integers(0, 2**32),
    counts=st.lists(st.integers(1, 16), min_size=6, max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_rendezvous_stable_under_node_count_changes(
    names, tenants, salt, counts
):
    """Autoscaler breathing (node counts) never moves a tenant."""
    shards = [_FakeShard(name) for name in names]
    router = RendezvousRouter(salt=salt)
    before = {t: router.route(t, "m", shards).name for t in tenants}
    for shard, count in zip(shards, counts):
        shard.nodes = count
    after = {t: router.route(t, "m", shards).name for t in tenants}
    assert before == after


@given(names=_names, tenants=_tenants, salt=st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_rendezvous_removal_churn_is_bounded(names, tenants, salt):
    """Dropping one shard moves only the tenants that were on it."""
    shards = [_FakeShard(name) for name in names]
    router = RendezvousRouter(salt=salt)
    before = {t: router.route(t, "m", shards).name for t in tenants}
    removed = shards[0]
    survivors = shards[1:]
    if not survivors:
        return
    for tenant in tenants:
        after = router.route(tenant, "m", survivors).name
        if before[tenant] != removed.name:
            assert after == before[tenant]


@given(names=_names, tenants=_tenants, salt=st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_rendezvous_addition_churn_is_bounded(names, tenants, salt):
    """Adding one shard only ever pulls tenants *onto* the newcomer."""
    shards = [_FakeShard(name) for name in names]
    router = RendezvousRouter(salt=salt)
    before = {t: router.route(t, "m", shards).name for t in tenants}
    newcomer = _FakeShard("zz-new")
    grown = shards + [newcomer]
    for tenant in tenants:
        after = router.route(tenant, "m", grown).name
        if after != before[tenant]:
            assert after == newcomer.name


@given(names=_names, tenants=_tenants, salt=st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_draining_shards_never_routed_while_alternatives_exist(
    names, tenants, salt
):
    shards = [_FakeShard(name) for name in names]
    shards[0].draining = True
    router = RendezvousRouter(salt=salt)
    for tenant in tenants:
        target = router.route(tenant, "m", shards)
        if len(shards) > 1:
            assert target is not shards[0]
        else:  # routing somewhere beats dropping on the floor
            assert target is shards[0]


# --------------------------------------------------------------------------
# Priority eviction (weight-program cache)
# --------------------------------------------------------------------------
def _fake_program(nbytes):
    """A stand-in record with the two counted ndarray payloads."""
    half = max(1, nbytes // 16)  # float64: 8 bytes/elem, two tensors
    return types.SimpleNamespace(
        ideal=np.zeros(half), realized=np.zeros(half)
    )


@given(
    inserts=st.lists(
        st.tuples(st.booleans(), st.integers(1, 4)),  # (pinned, size units)
        min_size=2,
        max_size=24,
    ),
    budget_units=st.integers(2, 10),
)
@settings(max_examples=80, deadline=None)
def test_priority_eviction_matches_reference_model(inserts, budget_units):
    """Model-based check of the eviction order — in particular: a pinned
    entry is never evicted while an unpinned candidate exists and the
    byte budget still allows keeping it."""
    unit = 16  # bytes per size unit in _fake_program terms
    cache = WeightProgramCache(memory_budget_bytes=budget_units * unit)
    model: list[tuple[str, int, int]] = []  # (key, priority, nbytes), LRU order

    for index, (pinned, units) in enumerate(inserts):
        key = f"k{index}"
        nbytes = units * unit
        if pinned:
            cache.set_priority(key, 1)
        cache._insert(key, _fake_program(nbytes), die=0)
        model.append((key, 1 if pinned else 0, nbytes))
        # Reference eviction: lowest priority first, LRU within priority,
        # newest never a candidate.
        while len(model) > 1 and sum(m[2] for m in model) > budget_units * unit:
            candidates = model[:-1]
            victim = min(candidates, key=lambda m: m[1])
            # The invariant under test: a pinned victim implies every
            # candidate was pinned.
            if victim[1] > 0:
                assert all(m[1] > 0 for m in candidates)
            model.remove(victim)
        assert list(cache._entries) == [m[0] for m in model]
        assert cache.stats.bytes_cached == sum(m[2] for m in model)


def test_unpinning_restores_pure_lru_order():
    unit = 16
    cache = WeightProgramCache(memory_budget_bytes=3 * unit)
    cache.set_priority("a", 1)
    cache._insert("a", _fake_program(unit), die=0)
    cache._insert("b", _fake_program(unit), die=0)
    cache._insert("c", _fake_program(unit), die=0)
    cache._insert("d", _fake_program(unit), die=0)  # evicts b (a pinned)
    assert list(cache._entries) == ["a", "c", "d"]
    cache.set_priority("a", 0)
    cache._insert("e", _fake_program(unit), die=0)  # a is plain LRU now
    assert list(cache._entries) == ["c", "d", "e"]
