"""Tests for repro.sim.fleet — the Fig. 2 multi-node model."""

import pytest

from repro.core.mapping import ConvWorkload
from repro.sim.fleet import FleetModel, RadioModel


@pytest.fixture
def workload():
    return ConvWorkload(3, 8, 3, 128, 128, stride=2, padding=1)


@pytest.fixture
def fleet():
    return FleetModel()


def test_radio_model():
    radio = RadioModel()
    assert radio.transmit_energy_j(1000) == pytest.approx(1000 * 180e-9)
    assert radio.transmit_time_s(1000) == pytest.approx(8e-3)
    with pytest.raises(ValueError):
        radio.transmit_energy_j(-1)


def test_feature_payload_smaller_than_raw(fleet, workload):
    oisa = fleet.oisa_node(workload)
    cloud = fleet.cloud_centric_node(workload)
    assert oisa.payload_bytes < cloud.payload_bytes
    # Raw RGB frame: 128 * 128 * 3 bytes.
    assert cloud.payload_bytes == 128 * 128 * 3


def test_oisa_wins_total_energy(fleet, workload):
    report = fleet.compare(workload, num_nodes=4)
    assert report.energy_reduction > 2.0
    assert report.traffic_reduction > 2.0


def test_fleet_energy_scales_with_nodes(fleet, workload):
    small = fleet.compare(workload, num_nodes=2)
    large = fleet.compare(workload, num_nodes=8)
    assert large.fleet_energy_per_frame_j("oisa") == pytest.approx(
        4 * small.fleet_energy_per_frame_j("oisa")
    )


def test_radio_dominates_cloud_centric(fleet, workload):
    cloud = fleet.cloud_centric_node(workload)
    assert cloud.radio_energy_j > cloud.compute_energy_j


def test_payload_bit_packing(fleet, workload):
    oisa = fleet.oisa_node(workload)
    pooled_outputs = (
        workload.num_kernels
        * (workload.output_height // 2)
        * (workload.output_width // 2)
    )
    assert oisa.payload_bytes == -(-pooled_outputs * 5 // 8)


def test_num_nodes_validated(fleet, workload):
    with pytest.raises(ValueError):
        fleet.compare(workload, num_nodes=0)


def test_sustainable_fps_matches_stream_simulator(fleet, workload):
    """One definition of the analytic bound: fleet delegates to stream."""
    from repro.sim.stream import StreamSimulator

    bound = fleet.sustainable_fps(workload)
    assert bound == StreamSimulator(fleet.config).max_sustainable_fps(workload)
    assert bound > 0.0


def test_fleet_capacity_scales_linearly(fleet, workload):
    per_node = fleet.sustainable_fps(workload)
    assert fleet.fleet_capacity_fps(workload, 3) == pytest.approx(3 * per_node)
    with pytest.raises(ValueError):
        fleet.fleet_capacity_fps(workload, 0)
