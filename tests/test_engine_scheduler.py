"""Scheduler determinism + bit-identity pinning of the default serving path.

The engine split (scheduler/admission/workloads) must leave the default
``FrameServer`` configuration — greedy policy, no SLO classes,
``fault_profile="none"`` — **bit-identical** to the pre-split (PR 4)
engine.  ``tests/goldens/serve_default.json`` was generated from that
engine and pins every simulated-time field (arrival/start/finish/energy as
exact ``repr`` floats), the scheduling decisions (node placements, remap
events, cache counters) and a SHA-256 over each delivered output tensor.

Regenerate only after an *intentional* numeric change with::

    PYTHONPATH=src python tests/test_engine_scheduler.py --write

and review the diff — this file changing is the review event.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "goldens", "serve_default.json"
)


def _build_server(num_nodes: int):
    from repro.engine import FrameServer
    from repro.nn.models import build_lenet

    server = FrameServer(num_nodes=num_nodes, micro_batch=8, seed=0)
    server.register_model("model-a", build_lenet(seed=0))
    server.register_model("model-b", build_lenet(seed=1))
    return server


def _mixed_requests():
    """Blocks of 6 alternating between two models (remap-heavy stream)."""
    from repro.engine import FrameRequest

    frames = np.random.default_rng(42).uniform(0.0, 1.0, (48, 1, 28, 28))
    return [
        FrameRequest(frames[i], "model-a" if (i // 6) % 2 == 0 else "model-b")
        for i in range(48)
    ]


def _homogeneous_requests():
    from repro.engine import FrameRequest

    frames = np.random.default_rng(7).uniform(0.0, 1.0, (24, 1, 28, 28))
    return [FrameRequest(frame, "model-a") for frame in frames]


def _serialize(report) -> dict:
    """Exact, wall-clock-free serialization of one ServeReport."""
    responses = []
    for resp in report.responses:
        output = resp.output
        responses.append(
            {
                "index": resp.index,
                "model_key": resp.model_key,
                "node_id": resp.node_id,
                "arrival_s": repr(resp.event.arrival_s),
                "start_s": repr(resp.event.start_s),
                "finish_s": repr(resp.event.finish_s),
                "dropped": resp.event.dropped,
                "remapped": resp.event.remapped,
                "degraded": resp.degraded,
                "output_sha256": (
                    None
                    if output is None
                    else hashlib.sha256(
                        np.ascontiguousarray(output, dtype=float).tobytes()
                    ).hexdigest()
                ),
            }
        )
    return {
        "responses": responses,
        "total_energy_j": repr(report.stream.total_energy_j),
        "frames": report.stream.frames,
        "dropped": report.stream.dropped,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "payload_bytes": report.payload_bytes,
        "radio_energy_j": repr(report.radio_energy_j),
        "node_frames": {
            str(node): count for node, count in sorted(report.node_frames.items())
        },
        "health": report.health is not None,
    }


def _capture() -> dict:
    """The two pinned default-path streams (remap-heavy + oversubscribed)."""
    mixed = _build_server(num_nodes=2).serve(_mixed_requests(), offered_fps=1800.0)
    oversub = _build_server(num_nodes=1).serve(
        _homogeneous_requests(), offered_fps=2500.0
    )
    return {
        "schema": 1,
        "mixed_two_nodes_1800fps": _serialize(mixed),
        "oversubscribed_one_node_2500fps": _serialize(oversub),
    }


def test_default_path_bit_identical_to_pr4_engine():
    assert os.path.exists(GOLDEN_PATH), (
        "golden missing — run "
        "`PYTHONPATH=src python tests/test_engine_scheduler.py --write`"
    )
    with open(GOLDEN_PATH) as handle:
        expected = json.load(handle)
    actual = _capture()
    for case in ("mixed_two_nodes_1800fps", "oversubscribed_one_node_2500fps"):
        assert actual[case] == expected[case], (
            f"default serving path drifted from the PR 4 engine on {case!r}; "
            "the facade/scheduler split must keep the default configuration "
            "bit-identical (regenerate the golden only for an intentional "
            "numeric change)"
        )


# ----------------------------------------------------------------------
# Determinism: same seed + scenario -> identical ServeReport, per policy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["greedy", "edf", "slo"])
def test_serve_is_deterministic_per_policy(policy):
    from repro.engine import FrameServer, build_scenario

    def one_run():
        scenario = build_scenario(
            "mixed-tenants", frames=60, offered_fps=2600.0, seed=3
        )
        server = FrameServer(
            num_nodes=2, micro_batch=8, seed=3, policy=policy
        )
        return _serialize(server.serve_scenario(scenario))

    assert one_run() == one_run()


def test_policies_diverge_on_the_same_stream():
    """The three policies are really different code paths, not aliases."""
    from repro.engine import FrameServer, build_scenario

    def placements(policy):
        scenario = build_scenario(
            "mixed-tenants", frames=160, offered_fps=3000.0, seed=0
        )
        server = FrameServer(num_nodes=2, micro_batch=8, seed=0, policy=policy)
        report = server.serve_scenario(scenario)
        return [
            (r.index, r.node_id, r.event.start_s) for r in report.responses
        ]

    greedy, edf, slo = (placements(p) for p in ("greedy", "edf", "slo"))
    assert greedy != edf
    assert edf != slo


# ----------------------------------------------------------------------
# Policy queue disciplines (unit level)
# ----------------------------------------------------------------------
def _item(index, tenant="t", priority=0, deadline=None, weight=1.0, arrival=0.0):
    from repro.engine.admission import SloClass
    from repro.engine.scheduler import QueuedFrame

    slo = SloClass(
        name=tenant,
        priority=priority,
        deadline_s=deadline,
        drop_policy="deadline",
        weight=weight,
    )
    return QueuedFrame(
        index=index,
        model_key=f"m-{tenant}",
        tenant=tenant,
        arrival_s=arrival,
        slo=slo,
        deadline_s=slo.absolute_deadline_s(arrival),
    )


def test_edf_orders_by_deadline_then_fifo():
    from repro.engine.scheduler import EarliestDeadlinePolicy

    policy = EarliestDeadlinePolicy()
    policy.reset()
    policy.enqueue(_item(0, deadline=0.05))
    policy.enqueue(_item(1, deadline=0.01))
    policy.enqueue(_item(2, deadline=0.01))  # same deadline: FIFO after 1
    policy.enqueue(_item(3))  # no deadline: sorts last
    order = [policy.pop_next(0.0).index for _ in range(4)]
    assert order == [1, 2, 0, 3]
    assert policy.pop_next(0.0) is None


def test_slo_policy_priority_tiers_preempt_weights():
    from repro.engine.scheduler import SloAwarePolicy

    policy = SloAwarePolicy()
    policy.reset()
    for i in range(3):
        policy.enqueue(_item(i, tenant="low", priority=0, weight=100.0))
    policy.enqueue(_item(10, tenant="high", priority=5, weight=0.1))
    first = policy.pop_next(0.0)
    assert first.tenant == "high"  # priority wins regardless of weight


def test_slo_policy_wfq_shares_within_a_tier():
    from repro.engine.scheduler import SloAwarePolicy

    policy = SloAwarePolicy()
    policy.reset()
    for i in range(30):
        policy.enqueue(_item(i, tenant="a", weight=3.0))
        policy.enqueue(_item(100 + i, tenant="b", weight=1.0))
    served = []
    for _ in range(24):
        item = policy.pop_next(0.0)
        policy.on_dispatched(item)
        served.append(item.tenant)
    # 3:1 weights -> tenant a gets ~3x the dispatches over any window.
    assert served.count("a") == 18
    assert served.count("b") == 6


def test_slo_policy_ties_break_deterministically():
    from repro.engine.scheduler import SloAwarePolicy

    policy = SloAwarePolicy()
    policy.reset()
    policy.enqueue(_item(0, tenant="zeta"))
    policy.enqueue(_item(1, tenant="alpha"))
    # Equal priority + equal (zero) virtual work: lexicographic tenant.
    assert policy.pop_next(0.0).tenant == "alpha"


def test_scheduling_policy_factory():
    from repro.engine.scheduler import (
        GreedyFifoPolicy,
        scheduling_policy,
    )

    assert scheduling_policy("greedy").name == "greedy"
    assert scheduling_policy("EDF").name == "edf"
    instance = GreedyFifoPolicy()
    assert scheduling_policy(instance) is instance
    with pytest.raises(ValueError, match="unknown scheduling policy"):
        scheduling_policy("fifo++")


# ----------------------------------------------------------------------
# Queueing semantics through the server
# ----------------------------------------------------------------------
def test_queueing_policy_delivers_what_greedy_drops():
    """A burst greedy must drop, a deadline-queueing policy absorbs."""
    from repro.engine import FrameRequest, FrameServer, SloClass
    from repro.nn.models import build_lenet

    frames = np.random.default_rng(0).uniform(0.0, 1.0, (12, 1, 28, 28))
    # 12 frames arriving nearly at once: one node can only take the first
    # few under drop-if-busy, but can clear all of them within 40 ms.
    requests = [
        FrameRequest(frames[i], "m", arrival_s=i * 1e-5) for i in range(12)
    ]
    classes = {
        "m": SloClass(name="q", deadline_s=0.04, drop_policy="deadline")
    }

    def serve(policy):
        server = FrameServer(
            num_nodes=1,
            micro_batch=8,
            seed=0,
            policy=policy,
            slo_classes=classes,
        )
        server.register_model("m", build_lenet(seed=0))
        return server.serve(requests, offered_fps=1000.0)

    greedy = serve("greedy")
    edf = serve("edf")
    assert greedy.stream.dropped > 0
    assert edf.stream.dropped == 0
    assert edf.delivered == 12
    # Queued frames start strictly after their arrival.
    waited = [
        e for e in edf.stream.events if e.start_s > e.arrival_s + 1e-9
    ]
    assert waited


def test_queued_frames_expire_at_their_deadline():
    from repro.engine import FrameRequest, FrameServer, SloClass
    from repro.nn.models import build_lenet

    frames = np.random.default_rng(0).uniform(0.0, 1.0, (10, 1, 28, 28))
    requests = [
        FrameRequest(frames[i], "m", arrival_s=i * 1e-5) for i in range(10)
    ]
    # ~1 ms service per frame: a 2.5 ms deadline admits only the first
    # few; the rest must expire in the queue, not linger.
    classes = {
        "m": SloClass(name="tight", deadline_s=0.0025, drop_policy="deadline")
    }
    server = FrameServer(
        num_nodes=1, micro_batch=8, seed=0, policy="edf", slo_classes=classes
    )
    server.register_model("m", build_lenet(seed=0))
    report = server.serve(requests, offered_fps=1000.0)
    stats = report.slo.classes["tight"]
    assert stats.expired > 0
    assert stats.delivered + stats.expired + stats.dropped_busy == 10
    # Expired frames never dispatched: their events carry no service span.
    expired_events = [
        e for e in report.stream.events if e.dropped
    ]
    assert all(e.start_s == e.finish_s == e.arrival_s for e in expired_events)
    # Accounting is complete: every delivered frame is a hit or a miss.
    assert stats.deadline_hits + stats.deadline_misses == stats.delivered


def test_queued_frames_survive_idle_node_recalibration():
    """A health recalibration that extends ``free_at`` outside a dispatch
    (here: a drift trip on an otherwise idle node) must still wake the
    queue — frames buffered during the outage dispatch at recovery
    instead of stranding until end-of-stream expiry."""
    from repro.engine import FrameRequest, FrameServer, SloClass
    from repro.engine.health import FaultProfile
    from repro.nn.models import build_lenet

    # drift 8 K/s against the 0.6 K EO trip budget -> watchdog re-trims
    # at the first arrival after t = 75 ms; the node sits idle then.
    profile = FaultProfile(name="drift-test", drift_k_per_s=8.0)
    frames = np.random.default_rng(0).uniform(0.0, 1.0, (4, 1, 28, 28))
    arrivals = [0.0, 0.076, 0.0765, 0.077]
    requests = [
        FrameRequest(frames[i], "m", arrival_s=arrivals[i]) for i in range(4)
    ]
    classes = {
        "m": SloClass(name="q", deadline_s=10.0, drop_policy="deadline")
    }
    server = FrameServer(
        num_nodes=1,
        micro_batch=8,
        seed=0,
        policy="edf",
        slo_classes=classes,
        fault_profile=profile,
    )
    server.register_model("m", build_lenet(seed=0))
    report = server.serve(requests, offered_fps=1000.0)
    trips = [e for e in report.health.events if e.kind == "drift-trip"]
    assert trips, "scenario must actually trip the drift watchdog"
    assert report.delivered == 4
    assert report.slo.classes["q"].expired == 0
    # The queued frames started after the recalibration finished.
    recovered = max(
        e.time_s for e in report.health.events if e.kind == "recalibrated"
    )
    queued = [e for e in report.stream.events if e.arrival_s > 0.05]
    assert all(e.start_s >= recovered - 1e-12 for e in queued)


def test_serve_scenario_adopts_classes_per_call():
    """A later scenario's SLO classes replace an earlier one's (and a
    class-less scenario serves best-effort again) unless the server was
    constructed with explicit classes."""
    from repro.engine import FrameServer, SloClass, build_scenario

    server = FrameServer(num_nodes=2, micro_batch=8, seed=0, policy="slo")
    first = server.serve_scenario(
        build_scenario("mixed-tenants", frames=20, offered_fps=1000.0, seed=0)
    )
    assert set(first.slo.classes) == {"interactive", "batch"}
    second = server.serve_scenario(
        build_scenario("poisson", frames=20, offered_fps=1000.0, seed=0)
    )
    assert set(second.slo.classes) == {"stream"}

    pinned_class = SloClass(name="pinned", deadline_s=0.5)
    pinned = FrameServer(
        num_nodes=2,
        micro_batch=8,
        seed=0,
        policy="slo",
        slo_classes={"lenet-4b": pinned_class},
    )
    report = pinned.serve_scenario(
        build_scenario("mixed-tenants", frames=20, offered_fps=1000.0, seed=0)
    )
    assert "pinned" in report.slo.classes  # construction wins


def test_serve_scenario_rejects_conflicting_model_keys():
    """Same key, different kernel set (another seed) must not silently
    serve the stale weights."""
    from repro.engine import FrameServer, build_scenario

    server = FrameServer(num_nodes=1, micro_batch=8, seed=0)
    server.serve_scenario(
        build_scenario("poisson", frames=8, offered_fps=500.0, seed=0)
    )
    with pytest.raises(ValueError, match="redefines model key"):
        server.serve_scenario(
            build_scenario("poisson", frames=8, offered_fps=500.0, seed=1)
        )
    # Same seed -> same weights -> reuse is fine (kernel residency and
    # cache survive across calls).
    report = server.serve_scenario(
        build_scenario("poisson", frames=8, offered_fps=500.0, seed=0)
    )
    assert report.stream.frames == 8


def write_golden() -> None:
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(_capture(), handle, indent=2)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from golden_cli import golden_main

    golden_main(write_golden, __doc__)
