"""Golden ``repr()`` regression tests for Table 1 / Fig 9 / claims.

The perf work on the weight-programming path must keep every paper
artifact **bit-identical** — no tolerance, the exact same floats.  A
formatted table can round away a 1-ulp drift, so the goldens capture the
raw ``repr()`` of the underlying data (full float precision, dict
insertion order included — ``PowerBreakdown.total`` sums components in
insertion order, so reordering a breakdown dict is a real change even
when the total survives) *and* the rendered text.

Regenerate after an intentional numeric change with::

    PYTHONPATH=src python tests/test_goldens.py --write

and eyeball the diff — these files changing is the review event the
goldens exist to trigger.
"""

from __future__ import annotations

import os

import pytest

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")


def _table1_repr() -> str:
    from repro.analysis.table1 import build_table1

    data = build_table1()
    lines = [f"oisa_row: {data.oisa_row!r}"]
    lines.extend(f"{label}: {row!r}" for label, row in data.platform_rows)
    return "\n".join(lines)


def _table1_render() -> str:
    from repro.analysis.table1 import render_table1

    return render_table1()


def _fig9_repr() -> str:
    from repro.analysis.fig9 import build_fig9

    data = build_fig9()
    lines = [f"bit_configs: {data.bit_configs!r}"]
    for platform, series in data.power_w.items():
        lines.append(f"power_w[{platform}]: {series!r}")
    for platform, entries in data.breakdowns.items():
        for (w, a), entry in zip(data.bit_configs, entries):
            lines.append(f"breakdown[{platform}][{w},{a}]: {entry!r}")
    for platform, reduction in data.reductions_vs_oisa.items():
        lines.append(f"reduction[{platform}]: {reduction!r}")
    return "\n".join(lines)


def _fig9_render() -> str:
    from repro.analysis.fig9 import render_fig9

    return render_fig9()


def _claims_repr() -> str:
    from repro.analysis.claims import build_claims

    claims = build_claims(include_fig9=True)
    return "\n".join(
        f"{claim.name}: paper={claim.paper_value!r} "
        f"measured={claim.measured_value!r} holds={claim.holds!r}"
        for claim in claims
    )


GOLDENS = {
    "table1_repr.txt": _table1_repr,
    "table1_render.txt": _table1_render,
    "fig9_repr.txt": _fig9_repr,
    "fig9_render.txt": _fig9_render,
    "claims_repr.txt": _claims_repr,
}


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_golden(name):
    path = os.path.join(GOLDEN_DIR, name)
    assert os.path.exists(path), (
        f"golden {name} missing — run "
        "`PYTHONPATH=src python tests/test_goldens.py --write`"
    )
    with open(path) as handle:
        expected = handle.read()
    actual = GOLDENS[name]() + "\n"
    assert actual == expected, (
        f"{name} drifted from the golden. If the numeric change is "
        "intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_goldens.py --write` and "
        "review the diff."
    )


def write_goldens() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, build in sorted(GOLDENS.items()):
        path = os.path.join(GOLDEN_DIR, name)
        with open(path, "w") as handle:
            handle.write(build() + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from golden_cli import golden_main

    golden_main(write_goldens, __doc__)
