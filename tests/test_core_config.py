"""Tests for repro.core.config — the paper's structural constants."""

import pytest

from repro.core.config import PAPER_CONFIG, OISAConfig


def test_paper_structural_constants():
    cfg = PAPER_CONFIG
    assert cfg.num_banks == 80
    assert cfg.arms_per_bank == 5
    assert cfg.mrs_per_arm == 10
    assert cfg.mrs_per_bank == 50
    assert cfg.total_mrs == 4000
    assert cfg.total_arms == 400
    assert cfg.bank_columns == 4
    assert cfg.banks_per_column == 20
    assert cfg.num_awc_units == 40
    assert cfg.weight_mapping_iterations == 100
    assert cfg.macs_per_arm == 9


def test_paper_imager_constants():
    cfg = PAPER_CONFIG
    assert cfg.pixel_rows == cfg.pixel_cols == 128
    assert cfg.num_pixels == 16384
    assert cfg.pixel_pitch_m == pytest.approx(4.5e-6)
    assert cfg.frame_rate_hz == 1000.0
    assert cfg.mac_cycle_s == pytest.approx(55.8e-12)


def test_with_weight_bits_propagates_to_awc():
    cfg = OISAConfig().with_weight_bits(2)
    assert cfg.weight_bits == 2
    assert cfg.awc_design.num_bits == 2
    # Original untouched (frozen dataclasses).
    assert OISAConfig().weight_bits == 4


def test_bank_column_divisibility_enforced():
    with pytest.raises(ValueError):
        OISAConfig(num_banks=81)


def test_wdm_channels_must_cover_arm():
    from dataclasses import replace

    from repro.photonics.wdm import WdmGrid

    with pytest.raises(ValueError):
        OISAConfig(wdm=WdmGrid(num_channels=5))


def test_activation_levels_fixed_ternary():
    with pytest.raises(ValueError):
        OISAConfig(activation_levels=4)


def test_weight_bits_bounds():
    with pytest.raises(ValueError):
        OISAConfig(weight_bits=5)
    with pytest.raises(ValueError):
        OISAConfig(weight_bits=0)


def test_custom_geometry_derived_quantities():
    cfg = OISAConfig(num_banks=40, arms_per_bank=4, mrs_per_arm=10, bank_columns=4)
    assert cfg.total_mrs == 40 * 4 * 10
    assert cfg.total_arms == 160
    assert cfg.weight_mapping_iterations == -(-cfg.total_mrs // 40)
