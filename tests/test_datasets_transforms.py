"""Tests for repro.datasets.transforms — augmentation utilities."""

import numpy as np
import pytest

from repro.datasets.transforms import (
    Augmenter,
    intensity_jitter,
    random_hflip,
    random_shift,
)
from repro.util.rng import derive_rng


@pytest.fixture
def batch():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 1, (8, 1, 12, 12))


def test_random_shift_preserves_content(batch):
    rng = derive_rng(0, "t")
    shifted = random_shift(batch, 2, rng)
    assert shifted.shape == batch.shape
    # Circular shift preserves every pixel value (multiset equality).
    for index in range(len(batch)):
        np.testing.assert_allclose(
            np.sort(shifted[index].ravel()), np.sort(batch[index].ravel())
        )


def test_random_shift_zero_is_identity(batch):
    rng = derive_rng(0, "t")
    np.testing.assert_array_equal(random_shift(batch, 0, rng), batch)


def test_random_hflip_probability_extremes(batch):
    rng = derive_rng(1, "t")
    never = random_hflip(batch, 0.0, rng)
    np.testing.assert_array_equal(never, batch)
    always = random_hflip(batch, 1.0, derive_rng(2, "t"))
    np.testing.assert_array_equal(always, batch[:, :, :, ::-1])


def test_intensity_jitter_clips_to_unit_range(batch):
    rng = derive_rng(3, "t")
    jittered = intensity_jitter(batch, 0.5, rng)
    assert jittered.min() >= 0.0
    assert jittered.max() <= 1.0


def test_intensity_jitter_zero_sigma_identity(batch):
    rng = derive_rng(4, "t")
    np.testing.assert_array_equal(intensity_jitter(batch, 0.0, rng), batch)


def test_augmenter_deterministic_under_seed(batch):
    a = Augmenter(shift_px=2, jitter_sigma=0.1, seed=7)(batch)
    b = Augmenter(shift_px=2, jitter_sigma=0.1, seed=7)(batch)
    np.testing.assert_array_equal(a, b)


def test_augmenter_output_in_range(batch):
    out = Augmenter(shift_px=3, hflip_probability=0.5, jitter_sigma=0.2, seed=0)(
        batch
    )
    assert out.shape == batch.shape
    assert out.min() >= 0.0 and out.max() <= 1.0


def test_augmenter_validation():
    with pytest.raises(ValueError):
        Augmenter(shift_px=-1)
    with pytest.raises(ValueError):
        Augmenter(hflip_probability=1.5)
