"""Tests for repro.engine.admission — SLO classes, shedding, reporting."""

import math

import numpy as np
import pytest

from repro.engine.admission import (
    BEST_EFFORT,
    AdmissionController,
    SloClass,
    build_slo_report,
)


# ----------------------------------------------------------------------
# SloClass
# ----------------------------------------------------------------------
def test_slo_class_validation():
    with pytest.raises(ValueError, match="drop_policy"):
        SloClass(drop_policy="maybe")
    with pytest.raises(ValueError):
        SloClass(weight=0.0)
    with pytest.raises(ValueError):
        SloClass(deadline_s=-1.0)
    with pytest.raises(ValueError):
        SloClass(max_queue_s=0.0)


def test_absolute_deadline_and_hit():
    tight = SloClass(deadline_s=0.01)
    assert tight.absolute_deadline_s(0.5) == pytest.approx(0.51)
    assert tight.hit(0.01)
    assert not tight.hit(0.0100001)
    assert BEST_EFFORT.absolute_deadline_s(0.5) == math.inf
    assert BEST_EFFORT.hit(1e9)


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------
def test_controller_maps_keys_and_falls_back_to_default():
    gold = SloClass(name="gold", priority=3, deadline_s=0.005)
    controller = AdmissionController({"model-a": gold})
    assert controller.has_classes
    assert controller.slo_for("model-a") is gold
    assert controller.slo_for("model-b") is BEST_EFFORT
    assert not AdmissionController().has_classes


def test_controller_rejects_inconsistent_same_name_classes():
    """SLO accounting aggregates per class name, so one name must mean
    one definition across model keys."""
    shared = SloClass(name="x", deadline_s=0.01)
    AdmissionController({"a": shared, "b": shared})  # identical: fine
    AdmissionController(
        {"a": shared, "b": SloClass(name="x", deadline_s=0.01)}
    )  # equal by value: fine
    with pytest.raises(ValueError, match="defined inconsistently"):
        AdmissionController(
            {"a": shared, "b": SloClass(name="x", deadline_s=0.05)}
        )


def test_controller_shed_decision():
    bounded = SloClass(name="batch", max_queue_s=0.01)
    controller = AdmissionController({"m": bounded})
    assert not controller.sheds("m", 0.009)
    assert controller.sheds("m", 0.011)
    # No bound -> never sheds, even at infinite estimated wait.
    assert not controller.sheds("other", math.inf)


# ----------------------------------------------------------------------
# build_slo_report (through the real engine)
# ----------------------------------------------------------------------
def test_slo_report_accounts_every_offered_frame():
    from repro.engine import FrameRequest, FrameServer
    from repro.nn.models import build_lenet

    frames = np.random.default_rng(1).uniform(0.0, 1.0, (20, 1, 28, 28))
    requests = [
        FrameRequest(frames[i], "m", arrival_s=i * 4e-4) for i in range(20)
    ]
    classes = {"m": SloClass(name="svc", deadline_s=0.004)}
    server = FrameServer(
        num_nodes=1, micro_batch=8, seed=0, slo_classes=classes
    )
    server.register_model("m", build_lenet(seed=0))
    report = server.serve(requests, offered_fps=1000.0)
    assert report.slo is not None
    stats = report.slo.classes["svc"]
    assert stats.offered == 20
    assert (
        stats.delivered + stats.dropped_busy + stats.shed + stats.expired
        == 20
    )
    assert stats.deadline_hits + stats.deadline_misses == stats.delivered
    assert 0.0 <= stats.hit_rate <= 1.0
    assert report.slo.overall_hit_rate == stats.hit_rate
    # 2.5k FPS offered into a ~1k FPS node: some busy drops must show.
    assert stats.dropped_busy > 0
    assert not math.isnan(stats.p50_latency_s)
    assert stats.p50_latency_s <= stats.p99_latency_s


def test_backpressure_sheds_bounded_class_under_burst():
    from repro.engine import FrameRequest, FrameServer
    from repro.nn.models import build_lenet

    frames = np.random.default_rng(2).uniform(0.0, 1.0, (30, 1, 28, 28))
    # Everything lands at nearly t=0: the queue estimate blows through the
    # 3 ms bound once a few frames are waiting.
    requests = [
        FrameRequest(frames[i], "m", arrival_s=i * 1e-5) for i in range(30)
    ]
    classes = {
        "m": SloClass(
            name="bounded",
            deadline_s=0.1,
            drop_policy="deadline",
            max_queue_s=0.003,
        )
    }
    server = FrameServer(
        num_nodes=1, micro_batch=8, seed=0, policy="slo", slo_classes=classes
    )
    server.register_model("m", build_lenet(seed=0))
    report = server.serve(requests, offered_fps=1000.0)
    stats = report.slo.classes["bounded"]
    assert stats.shed > 0
    assert stats.delivered > 0
    # Shed frames are rejected up front: they never occupy a node.
    shed_responses = [
        r for r in report.responses if r.dropped and r.node_id == -1
    ]
    assert len(shed_responses) >= stats.shed


def test_default_path_has_no_slo_report():
    from repro.engine import FrameServer
    from repro.nn.models import build_lenet

    server = FrameServer(num_nodes=1, micro_batch=8, seed=0)
    server.register_model("m", build_lenet(seed=0))
    frames = np.random.default_rng(3).uniform(0.0, 1.0, (4, 1, 28, 28))
    report = server.serve_frames(frames, "m", offered_fps=500.0)
    assert report.slo is None


def test_slo_report_worst_class():
    from repro.engine.admission import SloClassStats, SloReport

    report = SloReport(policy="slo")
    assert report.worst_class() is None
    report.classes["good"] = SloClassStats(
        name="good", priority=2, deadline_s=0.01, offered=10, deadline_hits=10
    )
    report.classes["bad"] = SloClassStats(
        name="bad", priority=0, deadline_s=0.01, offered=10, deadline_hits=3
    )
    assert report.worst_class().name == "bad"
    assert report.overall_hit_rate == pytest.approx(13 / 20)


def test_build_slo_report_splits_drop_reasons():
    """Unit-level: shed/expired/busy drops land in separate counters."""
    from repro.engine.server import FrameResponse
    from repro.sim.stream import StreamEvent

    def response(index, dropped):
        event = StreamEvent(index, 0.0, 0.0, 0.001, dropped, False)
        return FrameResponse(index, "m", -1 if dropped else 0, None, event)

    responses = [response(i, i > 0) for i in range(4)]
    controller = AdmissionController({"m": SloClass(name="c", deadline_s=0.01)})
    report = build_slo_report(
        "slo", responses, controller, shed={1}, expired={2}
    )
    stats = report.classes["c"]
    assert (stats.shed, stats.expired, stats.dropped_busy) == (1, 1, 1)
    assert stats.delivered == 1 and stats.deadline_hits == 1
