"""Tests for repro.engine.store — the content-addressed program store.

Covers the ISSUE's hard cases: byte-exact round-trips across bit widths,
truncation / hash-mismatch degrading to reprogramming (counted, never a
crash), eviction leaving the on-disk copy alone, and ``invalidate_die``
clearing both layers.
"""

import os

import numpy as np
import pytest

from repro.core.opc import OpticalProcessingCore
from repro.engine import (
    STORE_SCHEMA_VERSION,
    FrameServer,
    ProgramStore,
    WeightProgramCache,
)
from repro.engine.workloads import ModelSpec
from repro.nn.quant import UniformWeightQuantizer


def _kernel_set(seed, bits=4, shape=(8, 1, 3, 3)):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=shape) * 0.1
    quantizer = UniformWeightQuantizer(bits)
    return quantizer.quantize(weights), quantizer.scale(weights)


def _programmed(seed=0, bits=4, die=1):
    opc = OpticalProcessingCore(seed=die)
    quantized, scale = _kernel_set(seed, bits=bits)
    programmed = opc.program(quantized, scale)
    key = WeightProgramCache.key_for(opc, quantized, scale)
    return key, programmed


def _assert_byte_equal(left, right):
    assert left.ideal.dtype == right.ideal.dtype
    assert left.realized.dtype == right.realized.dtype
    assert np.array_equal(left.ideal, right.ideal)
    assert np.array_equal(left.realized, right.realized)
    assert left.scale == right.scale
    assert left.tuning == right.tuning
    assert left.mapping_iterations == right.mapping_iterations


# --------------------------------------------------------------------------
# Round trips
# --------------------------------------------------------------------------
@pytest.mark.parametrize("bits", [1, 2, 3, 4])
def test_roundtrip_byte_equal_across_bit_widths(tmp_path, bits):
    store = ProgramStore(tmp_path)
    key, programmed = _programmed(seed=bits, bits=bits)
    assert store.put(key, programmed, die=1) is True
    loaded = store.load(key)
    assert loaded is not None
    _assert_byte_equal(loaded, programmed)
    assert store.stats.writes == 1 and store.stats.hits == 1


def test_roundtrip_byte_equal_across_zoo(tmp_path):
    """Every zoo family's first layer survives the npz round trip."""
    store = ProgramStore(tmp_path)
    for family in ("lenet", "mlp", "vgg16", "resnet18"):
        spec = ModelSpec(family, 4)
        model = spec.build(0)
        from repro.core.pipeline import HardwareFirstLayerPipeline

        first = HardwareFirstLayerPipeline._find_first_quant_layer(model)
        quantized = first.quantizer.quantize(first.weight.data)
        scale = first.quantizer.scale(first.weight.data)
        opc = OpticalProcessingCore(seed=3)
        programmed = opc.program(quantized, scale)
        key = WeightProgramCache.key_for(opc, quantized, scale)
        store.put(key, programmed, die=3)
        _assert_byte_equal(store.load(key), programmed)


def test_put_is_content_addressed_and_idempotent(tmp_path):
    store = ProgramStore(tmp_path)
    key, programmed = _programmed()
    assert store.put(key, programmed, die=1) is True
    assert store.put(key, programmed, die=1) is False  # never rewritten
    assert store.stats.writes == 1
    assert len(store) == 1 and key in store


def test_missing_key_counts_a_miss(tmp_path):
    store = ProgramStore(tmp_path)
    assert store.load("0" * 64) is None
    assert store.stats.misses == 1 and store.stats.corrupt == 0


def test_keys_ignore_foreign_and_old_schema_files(tmp_path):
    store = ProgramStore(tmp_path)
    key, programmed = _programmed()
    store.put(key, programmed, die=1)
    (tmp_path / "README.txt").write_text("not an entry")
    (tmp_path / f"{'a' * 64}.v{STORE_SCHEMA_VERSION + 1}.npz").write_bytes(
        b"future schema"
    )
    assert store.keys() == [key]
    assert len(store) == 1


def test_schema_token_is_stable_and_short():
    assert ProgramStore.schema_token() == ProgramStore.schema_token()
    assert len(ProgramStore.schema_token()) == 16


def test_store_pickles_as_path_only(tmp_path):
    import pickle

    store = ProgramStore(tmp_path)
    key, programmed = _programmed()
    store.put(key, programmed, die=1)
    clone = pickle.loads(pickle.dumps(store))
    assert clone.root == store.root
    assert clone.stats.writes == 0  # stats are per-process
    _assert_byte_equal(clone.load(key), programmed)


# --------------------------------------------------------------------------
# Corruption: degrade to reprogramming, never crash
# --------------------------------------------------------------------------
def _entry_path(store, key):
    return os.path.join(store.root, f"{key}.v{STORE_SCHEMA_VERSION}.npz")


def test_truncated_entry_reprograms_and_counts(tmp_path):
    store = ProgramStore(tmp_path)
    key, programmed = _programmed()
    store.put(key, programmed, die=1)
    path = _entry_path(store, key)
    data = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) // 2])
    assert store.load(key) is None  # degraded, not raised
    assert store.stats.corrupt == 1
    assert not os.path.exists(path)  # removed for the rewrite
    # The caller's reprogramming pass writes a fresh entry back.
    assert store.put(key, programmed, die=1) is True
    _assert_byte_equal(store.load(key), programmed)


def test_flipped_payload_bit_fails_sha256(tmp_path):
    store = ProgramStore(tmp_path)
    key, programmed = _programmed()
    store.put(key, programmed, die=1)
    path = _entry_path(store, key)
    data = bytearray(open(path, "rb").read())
    # npz members are STORED (uncompressed), so flipping a byte in the
    # middle lands in array payload and must trip the digest check.
    data[len(data) // 2] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    assert store.load(key) is None
    assert store.stats.corrupt == 1


def test_verify_reports_but_keeps_corrupt_entries(tmp_path):
    store = ProgramStore(tmp_path)
    good_key, programmed = _programmed(seed=0)
    bad_key, other = _programmed(seed=1)
    store.put(good_key, programmed, die=1)
    store.put(bad_key, other, die=1)
    bad_path = _entry_path(store, bad_key)
    with open(bad_path, "wb") as handle:
        handle.write(b"garbage")
    report = store.verify()
    assert report["ok"] == [good_key]
    assert report["corrupt"] == [bad_key]
    assert os.path.exists(bad_path)  # kept for inspection


def test_cache_falls_back_to_programming_on_corruption(tmp_path):
    """A corrupt store entry costs one mapping chain, nothing else."""
    store = ProgramStore(tmp_path)
    opc = OpticalProcessingCore(seed=1)
    quantized, scale = _kernel_set(0)
    cold = WeightProgramCache(store=store)
    programmed, hit = cold.get_or_program(opc, quantized, scale)
    assert hit is False
    key = cold.key_for(opc, quantized, scale)
    path = _entry_path(store, key)
    with open(path, "wb") as handle:
        handle.write(b"garbage")

    warm_store = ProgramStore(tmp_path)
    warm = WeightProgramCache(store=warm_store)
    fresh_opc = OpticalProcessingCore(seed=1)
    reprogrammed, hit = warm.get_or_program(fresh_opc, quantized, scale)
    assert hit is False  # corruption degraded to a cold program
    assert warm_store.stats.corrupt == 1
    assert warm.stats.store_hits == 0
    _assert_byte_equal(reprogrammed, programmed)
    # ... and the fresh entry was written back behind the miss.
    _assert_byte_equal(warm_store.load(key), programmed)


# --------------------------------------------------------------------------
# Cache integration: read-through, write-behind, eviction, invalidation
# --------------------------------------------------------------------------
def test_second_cache_restores_instead_of_programming(tmp_path):
    store = ProgramStore(tmp_path)
    opc = OpticalProcessingCore(seed=1)
    quantized, scale = _kernel_set(0)
    cold = WeightProgramCache(store=store)
    programmed, _ = cold.get_or_program(opc, quantized, scale)

    warm = WeightProgramCache(store=ProgramStore(tmp_path))
    fresh_opc = OpticalProcessingCore(seed=1)
    restored, hit = warm.get_or_program(fresh_opc, quantized, scale)
    assert hit is True  # no mapping chain ran
    assert warm.stats.misses == 0
    assert warm.stats.store_hits == 1
    _assert_byte_equal(restored, programmed)


def test_eviction_never_deletes_the_disk_copy(tmp_path):
    store = ProgramStore(tmp_path)
    cache = WeightProgramCache(capacity=1, store=store)
    opc = OpticalProcessingCore(seed=1)
    first_q, first_s = _kernel_set(0)
    second_q, second_s = _kernel_set(1)
    first_key = cache.key_for(opc, first_q, first_s)
    programmed, _ = cache.get_or_program(opc, first_q, first_s)
    cache.get_or_program(opc, second_q, second_s)  # evicts the first
    assert cache.stats.evictions == 1
    assert not cache.has_program(opc, first_q, first_s)
    assert first_key in store  # eviction is strictly in-memory
    # The next activation restores the evicted entry from disk.
    restored, hit = cache.get_or_program(opc, first_q, first_s)
    assert hit is True and cache.stats.store_hits == 1
    _assert_byte_equal(restored, programmed)


def test_invalidate_die_clears_both_layers(tmp_path):
    store = ProgramStore(tmp_path)
    cache = WeightProgramCache(store=store)
    tripped = OpticalProcessingCore(seed=1)
    healthy = OpticalProcessingCore(seed=2)
    quantized, scale = _kernel_set(0)
    cache.get_or_program(tripped, quantized, scale)
    cache.get_or_program(healthy, quantized, scale)
    assert len(cache) == 2 and len(store) == 2

    assert cache.invalidate_die(1) == 1
    assert len(cache) == 1
    assert len(store) == 1  # the tripped die's npz is gone too
    assert store.keys() == [cache.key_for(healthy, quantized, scale)]
    assert store.stats.invalidations == 1


def test_attach_store_is_idempotent_but_not_replaceable(tmp_path):
    store = ProgramStore(tmp_path / "one")
    cache = WeightProgramCache(store=store)
    cache.attach_store(store)  # same store: no-op
    with pytest.raises(ValueError, match="already has a program store"):
        cache.attach_store(ProgramStore(tmp_path / "two"))


def test_restore_from_store_is_stats_neutral(tmp_path):
    store = ProgramStore(tmp_path)
    opc = OpticalProcessingCore(seed=1)
    quantized, scale = _kernel_set(0)
    WeightProgramCache(store=store).get_or_program(opc, quantized, scale)

    warm = WeightProgramCache(store=ProgramStore(tmp_path))
    fresh_opc = OpticalProcessingCore(seed=1)
    assert warm.restore_from_store(fresh_opc, quantized, scale) is True
    assert warm.stats.hits == 0 and warm.stats.misses == 0
    assert warm.stats.store_hits == 1
    assert warm.restore_from_store(fresh_opc, quantized, scale) is True
    assert warm.stats.store_hits == 1  # resident: no second disk read
    missing_q, missing_s = _kernel_set(9)
    assert warm.restore_from_store(fresh_opc, missing_q, missing_s) is False


# --------------------------------------------------------------------------
# Server-level warm runs
# --------------------------------------------------------------------------
def _store_server(tmp_path, program_store):
    from repro.nn.models import build_lenet

    server = FrameServer(
        num_nodes=2, micro_batch=8, seed=0, program_store=program_store
    )
    server.register_model("model-a", build_lenet(seed=0))
    server.register_model("model-b", build_lenet(seed=1))
    return server


def test_warm_server_programs_nothing(tmp_path):
    cold = _store_server(tmp_path, ProgramStore(tmp_path / "store"))
    cold_report = cold.warmup(frame_shape=(1, 28, 28))
    assert cold_report["cache_misses"] > 0

    warm = _store_server(tmp_path, str(tmp_path / "store"))  # path form
    warm_report = warm.warmup(frame_shape=(1, 28, 28))
    assert warm_report["cache_misses"] == 0
    assert warm.cache.stats.misses == 0
    assert warm.cache.stats.store_hits == cold_report["cache_misses"]
