"""Tests for repro.util.units."""

import math

import pytest

from repro.util import units


def test_wavelength_frequency_roundtrip():
    wavelength = 1550e-9
    frequency = units.wavelength_to_frequency(wavelength)
    assert frequency == pytest.approx(193.414e12, rel=1e-3)
    assert units.frequency_to_wavelength(frequency) == pytest.approx(wavelength)


def test_wavelength_to_frequency_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.wavelength_to_frequency(0.0)
    with pytest.raises(ValueError):
        units.frequency_to_wavelength(-1.0)


def test_db_linear_roundtrip():
    assert units.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)
    assert units.linear_to_db(10.0) == pytest.approx(10.0)
    assert units.db_to_linear(units.linear_to_db(0.37)) == pytest.approx(0.37)


def test_linear_to_db_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.linear_to_db(0.0)


def test_dbm_watt_roundtrip():
    assert units.dbm_to_watt(0.0) == pytest.approx(1e-3)
    assert units.watt_to_dbm(1e-3) == pytest.approx(0.0)
    assert units.watt_to_dbm(units.dbm_to_watt(-17.3)) == pytest.approx(-17.3)


def test_photon_energy_at_1550nm():
    # hc/lambda ~ 0.8 eV at 1550 nm.
    energy_ev = units.photon_energy_j(1550e-9) / units.ELEMENTARY_CHARGE_C
    assert energy_ev == pytest.approx(0.8, rel=0.01)


def test_tops_per_watt():
    assert units.tops_per_watt(7.1e12, 1.0) == pytest.approx(7.1)
    with pytest.raises(ValueError):
        units.tops_per_watt(1e12, 0.0)


def test_scale_factors_consistent():
    assert units.NM == 1e-9
    assert units.UM == 1e-6
    assert units.PS == 1e-12
    assert math.isclose(units.GHZ * 1000, units.THZ)
