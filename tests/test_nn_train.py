"""Tests for repro.nn.train — the trainer loop."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU, Sequential
from repro.nn.optim import SGD, ConstantLR
from repro.nn.train import Trainer, TrainingHistory


def _toy_problem(n=400, seed=0):
    """Linearly separable two-class blobs."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    return x, y


def _make_trainer(seed=0):
    model = Sequential([Dense(2, 16, seed=1), ReLU(), Dense(16, 2, seed=2)])
    optimizer = SGD(model.parameters(), momentum=0.9)
    return Trainer(model, optimizer, ConstantLR(0.05), seed=seed)


def test_training_learns_separable_problem():
    x, y = _toy_problem()
    trainer = _make_trainer()
    history = trainer.fit(x, y, epochs=10, batch_size=32, x_val=x, y_val=y)
    assert history.val_accuracy[-1] > 0.95
    assert history.train_loss[-1] < history.train_loss[0]


def test_history_shapes():
    x, y = _toy_problem()
    trainer = _make_trainer()
    history = trainer.fit(x, y, epochs=3, batch_size=32)
    assert history.epochs == 3
    assert len(history.train_accuracy) == 3
    assert history.val_accuracy == []  # no validation set supplied
    assert history.best_val_accuracy() == 0.0


def test_deterministic_under_seed():
    x, y = _toy_problem()
    a = _make_trainer(seed=3).fit(x, y, epochs=2, batch_size=32)
    b = _make_trainer(seed=3).fit(x, y, epochs=2, batch_size=32)
    assert a.train_loss == b.train_loss


def test_different_seed_different_shuffle():
    x, y = _toy_problem()
    a = _make_trainer(seed=1).fit(x, y, epochs=1, batch_size=32)
    b = _make_trainer(seed=2).fit(x, y, epochs=1, batch_size=32)
    assert a.train_loss != b.train_loss


def test_predict_logits_batching():
    x, y = _toy_problem(130)
    trainer = _make_trainer()
    logits = trainer.predict_logits(x, batch_size=32)
    assert logits.shape == (130, 2)


def test_evaluate_range():
    x, y = _toy_problem()
    trainer = _make_trainer()
    assert 0.0 <= trainer.evaluate(x, y) <= 1.0


def test_fit_validation():
    x, y = _toy_problem()
    trainer = _make_trainer()
    with pytest.raises(ValueError):
        trainer.fit(x, y, epochs=0)
    with pytest.raises(ValueError):
        trainer.fit(x, y[:10], epochs=1)


def test_history_dataclass():
    history = TrainingHistory(val_accuracy=[0.5, 0.8, 0.7])
    assert history.best_val_accuracy() == 0.8
