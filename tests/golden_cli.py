"""Strict CLI entry shared by the golden-regeneration scripts.

Every ``--write`` entrypoint (``tests/test_goldens.py``,
``tests/test_engine_scheduler.py``) funnels through :func:`golden_main`
so regeneration hygiene is uniform and pinned by
``tests/test_golden_hygiene.py``:

* unknown arguments fail loudly (argparse exits 2) **before** any golden
  byte is written — a typo like ``--wirte`` or a stray extra flag must
  never silently print the docstring while the caller believes the
  goldens were refreshed;
* ``--write`` asserts the repo-root working directory (``tests/goldens/``
  resolvable from ``cwd``) so regen always runs in the tree whose diff
  the reviewer is about to read;
* a bare invocation prints the script's docstring (the historical
  behaviour) and changes nothing.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable


def golden_main(
    writer: Callable[[], None],
    doc: str | None,
    argv: list[str] | None = None,
) -> None:
    """Run one golden script's CLI: ``--write`` regenerates, else docs."""
    parser = argparse.ArgumentParser(
        description="regenerate committed goldens (review the diff!)"
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="rewrite the goldens this script owns",
    )
    args = parser.parse_args(argv)  # unknown/extra args: exit 2, no write
    if not args.write:
        print(doc or "pass --write to regenerate the goldens")
        return
    golden_dir = os.path.join(os.getcwd(), "tests", "goldens")
    if not os.path.isdir(golden_dir):
        sys.exit(
            "golden regen must run from the repo root "
            f"(no tests/goldens/ under {os.getcwd()!r})"
        )
    writer()
