"""Tests for repro.analysis.robustness_report — registry-driven fault sweep."""

import numpy as np
import pytest

from repro.analysis.robustness_report import (
    RobustnessSettings,
    build_robustness_report,
    render_robustness_report,
)
from repro.sim.platforms import iter_platforms, platform_registry


@pytest.fixture(scope="module")
def report():
    return build_robustness_report(RobustnessSettings.fast())


def test_covers_every_registered_platform(report):
    names = {platform.name for platform in iter_platforms()}
    assert set(report.platforms()) == names
    # One cell per (platform, rate).
    rates = report.settings.fault_rates
    assert len(report.cells) == len(platform_registry()) * len(rates)


def test_oisa_degrades_while_digital_platforms_hold(report):
    matrix = report.accuracy_matrix()
    low, high = report.settings.fault_rates[0], report.settings.fault_rates[-1]
    assert matrix["OISA"][high] < matrix["OISA"][low]
    for cell in report.cells:
        if not cell.fault_injectable:
            assert cell.accuracy == report.software_accuracy
            assert cell.calibrated_accuracy is None


def test_probe_model_learned_the_task(report):
    """The sweep is meaningful only above chance level."""
    chance = 1.0 / report.settings.num_classes
    assert report.software_accuracy > 2 * chance
    assert report.accuracy_matrix()["OISA"][0.0] > 2 * chance


def test_calibrated_column_present_for_oisa(report):
    oisa = [cell for cell in report.cells if cell.platform == "OISA"]
    assert all(cell.calibrated_accuracy is not None for cell in oisa)


def test_base_spec_rides_along_and_label_renders():
    """A profile's extra fault classes must actually harshen the sweep."""
    from repro.sim.faults import FaultSpec

    settings = RobustnessSettings(
        fault_rates=(0.0,),
        base_spec=FaultSpec(bpd_gain_sigma=0.3, stuck_awc_branch_rate=0.2),
        label="harsh",
        include_calibrated=False,
    )
    harsh = build_robustness_report(settings)
    plain = build_robustness_report(
        RobustnessSettings(fault_rates=(0.0,), include_calibrated=False)
    )
    assert (
        harsh.accuracy_matrix()["OISA"][0.0]
        < plain.accuracy_matrix()["OISA"][0.0]
    )
    assert "Robustness [harsh]" in render_robustness_report(harsh)


def test_report_is_deterministic():
    settings = RobustnessSettings(
        fault_rates=(0.0, 0.3), epochs=2, include_calibrated=False
    )
    first = build_robustness_report(settings)
    second = build_robustness_report(settings)
    assert first.software_accuracy == second.software_accuracy
    for left, right in zip(first.cells, second.cells):
        assert left == right


def test_render_mentions_every_platform(report):
    text = render_robustness_report(report)
    for name in report.platforms():
        assert name in text
    assert "digital (exempt)" in text
    assert "fault rate" in text
