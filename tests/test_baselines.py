"""Tests for repro.baselines — the rebuilt comparison platforms."""

import numpy as np
import pytest

from repro.baselines import (
    AppCipAccelerator,
    AsicAccelerator,
    CrosslightAccelerator,
    LITERATURE_DESIGNS,
    table1_rows,
)
from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel, default_plan, resnet18_first_layer_workload


@pytest.fixture
def workload():
    return resnet18_first_layer_workload()


@pytest.fixture
def oisa_power():
    model = OISAEnergyModel(OISAConfig())
    return model.average_power_w(default_plan()).total


# --------------------------------------------------------------------------
# Crosslight
# --------------------------------------------------------------------------
def test_crosslight_half_throughput():
    crosslight = CrosslightAccelerator()
    oisa = OISAEnergyModel(OISAConfig())
    assert crosslight.peak_throughput_ops() == pytest.approx(
        oisa.peak_throughput_ops() / 2.0
    )
    from repro.core.mapping import macs_per_cycle

    assert crosslight.macs_per_cycle(3) == macs_per_cycle(OISAConfig(), 3) // 2


def test_crosslight_adc_dac_dominate(workload):
    crosslight = CrosslightAccelerator()
    breakdown = crosslight.average_power_w(workload, weight_bits=4)
    converters = breakdown.components["adc"] + breakdown.components["dac"]
    assert converters > 0.5 * breakdown.total


def test_crosslight_power_grows_with_bits(workload):
    crosslight = CrosslightAccelerator()
    powers = [
        crosslight.average_power_w(workload, bits).total for bits in (1, 2, 3, 4)
    ]
    assert powers == sorted(powers)


def test_crosslight_slots_halved(workload):
    crosslight = CrosslightAccelerator()
    assert crosslight.kernel_slots(3) == 200
    # 192 planes still fit -> same cycle count as OISA, half the kernels/arm.
    assert crosslight.compute_cycles(workload) == workload.windows_per_channel


# --------------------------------------------------------------------------
# AppCiP
# --------------------------------------------------------------------------
def test_appcip_analog_mac_dominates(workload):
    appcip = AppCipAccelerator()
    breakdown = appcip.average_power_w(workload, weight_bits=4)
    assert breakdown.components["analog_mac"] > 0.4 * breakdown.total


def test_appcip_power_grows_with_bits(workload):
    appcip = AppCipAccelerator()
    powers = [appcip.average_power_w(workload, bits).total for bits in (1, 2, 3, 4)]
    assert powers == sorted(powers)


def test_appcip_nvm_write_amortised(workload):
    appcip = AppCipAccelerator()
    breakdown = appcip.average_power_w(workload)
    assert breakdown.components["nvm_write"] < breakdown.components["nvm_read"]


def test_appcip_frame_rate_limit(workload):
    appcip = AppCipAccelerator()
    limit = appcip.frame_rate_limit_hz(workload)
    assert 500 < limit < 100000  # paper reports 3000 FPS class


# --------------------------------------------------------------------------
# ASIC
# --------------------------------------------------------------------------
def test_asic_memory_and_static_costs(workload):
    asic = AsicAccelerator()
    breakdown = asic.average_power_w(workload, weight_bits=4)
    memory = (
        breakdown.components["sram"]
        + breakdown.components["edram"]
        + breakdown.components["rf"]
    )
    assert memory > breakdown.components["mac"]  # data movement dominates
    assert breakdown.components["static"] > 0.0


def test_asic_sensor_conversion_cost(workload):
    asic = AsicAccelerator()
    breakdown = asic.average_power_w(workload)
    assert breakdown.components["adc"] > 0.0
    assert breakdown.components["link"] > 0.0


def test_asic_peak_throughput():
    asic = AsicAccelerator()
    assert asic.peak_throughput_macs() == pytest.approx(64 * 256 * 600e6)


# --------------------------------------------------------------------------
# Paper ratios (the Fig. 9 headline)
# --------------------------------------------------------------------------
def test_average_power_reductions_match_paper(workload, oisa_power):
    crosslight = CrosslightAccelerator()
    appcip = AppCipAccelerator()
    asic = AsicAccelerator()
    ratios = {"crosslight": [], "appcip": [], "asic": []}
    for bits in (1, 2, 3, 4):
        ratios["crosslight"].append(
            crosslight.average_power_w(workload, bits).total / oisa_power
        )
        ratios["appcip"].append(
            appcip.average_power_w(workload, bits).total / oisa_power
        )
        ratios["asic"].append(
            asic.average_power_w(workload, bits).total / oisa_power
        )
    assert np.mean(ratios["crosslight"]) == pytest.approx(8.3, rel=0.25)
    assert np.mean(ratios["appcip"]) == pytest.approx(7.9, rel=0.25)
    assert np.mean(ratios["asic"]) == pytest.approx(18.4, rel=0.25)


def test_oisa_beats_every_baseline_at_every_bit_width(workload, oisa_power):
    platforms = (CrosslightAccelerator(), AppCipAccelerator(), AsicAccelerator())
    for bits in (1, 2, 3, 4):
        for platform in platforms:
            assert platform.average_power_w(workload, bits).total > oisa_power


# --------------------------------------------------------------------------
# Literature registry
# --------------------------------------------------------------------------
def test_table1_rows_complete():
    rows = table1_rows()
    assert len(rows) == 10
    keys = {row.key for row in rows}
    assert {"macsen", "pisa", "appcip", "senputing"} <= keys


def test_literature_efficiency_parsing():
    senputing = next(d for d in LITERATURE_DESIGNS if d.key == "senputing")
    assert senputing.efficiency_upper() == pytest.approx(34.6)
    macsen = next(d for d in LITERATURE_DESIGNS if d.key == "macsen")
    assert macsen.efficiency_upper() == pytest.approx(1.32)
