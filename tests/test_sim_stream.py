"""Tests for repro.sim.stream — video-stream simulation."""

import math

import pytest

from repro.core.config import OISAConfig
from repro.core.mapping import ConvWorkload
from repro.sim.stream import StreamSimulator


@pytest.fixture
def simulator():
    return StreamSimulator(OISAConfig())


@pytest.fixture
def workload():
    return ConvWorkload(3, 64, 3, 128, 128, padding=1)


def test_at_budget_no_drops(simulator, workload):
    report = simulator.run(workload, num_frames=50, offered_fps=1000.0)
    assert report.dropped == 0
    assert report.frames == 50


def test_oversubscription_drops_frames(simulator, workload):
    report = simulator.run(workload, num_frames=100, offered_fps=2500.0)
    assert report.dropped > 0
    assert 0.0 < report.drop_rate < 1.0


def test_max_sustainable_matches_paper_rate(simulator, workload):
    assert simulator.max_sustainable_fps(workload) == pytest.approx(1000.0, rel=0.01)


def test_latency_spans_exposure_plus_compute(simulator, workload):
    report = simulator.run(workload, num_frames=10, offered_fps=500.0)
    # Latency includes the full sequential path: ~1 ms exposure, ~1 us of
    # compute, and ~0.5 ms shipping 64 x 128 x 128 features at 10 Gb/s.
    assert report.mean_latency_s > 1e-3
    assert report.mean_latency_s < 1.7e-3


def test_remap_frames_cost_more_energy(simulator, workload):
    steady = simulator.run(workload, num_frames=20, offered_fps=500.0)
    swapping = simulator.run(
        workload, num_frames=20, offered_fps=500.0, remap_every=5
    )
    assert swapping.total_energy_j > steady.total_energy_j
    assert sum(e.remapped for e in swapping.events) == 4


def test_sustained_fps_accounts_drops(simulator, workload):
    report = simulator.run(workload, num_frames=200, offered_fps=2000.0)
    assert report.sustained_fps < 2000.0
    assert report.sustained_fps == pytest.approx(1000.0, rel=0.1)


def test_average_power_near_single_frame_model(simulator, workload):
    report = simulator.run(workload, num_frames=100, offered_fps=1000.0)
    # ~1.2 mW at the paper's frame rate.
    assert report.average_power_w == pytest.approx(1.2e-3, rel=0.25)


def test_event_latency_nan_when_dropped(simulator, workload):
    report = simulator.run(workload, num_frames=50, offered_fps=5000.0)
    dropped = [e for e in report.events if e.dropped]
    assert dropped
    assert math.isnan(dropped[0].latency_s)


def test_validation(simulator, workload):
    with pytest.raises(ValueError):
        simulator.run(workload, num_frames=0, offered_fps=100.0)
    with pytest.raises(ValueError):
        simulator.run(workload, num_frames=10, offered_fps=100.0, remap_every=-1)


# --------------------------------------------------------------------------
# Drop / remap statistics in detail
# --------------------------------------------------------------------------
def test_double_rate_drops_every_other_frame(simulator, workload):
    """At 2x the sustainable rate the pipe alternates serve/drop."""
    report = simulator.run(workload, num_frames=100, offered_fps=2000.0)
    assert report.drop_rate == pytest.approx(0.5, abs=0.02)
    fates = [event.dropped for event in report.events[:10]]
    assert fates == [False, True] * 5


def test_drop_count_consistency(simulator, workload):
    report = simulator.run(workload, num_frames=120, offered_fps=3000.0)
    assert report.dropped == sum(e.dropped for e in report.events)
    assert report.frames == len(report.events)
    assert report.drop_rate == report.dropped / report.frames


def test_remap_cadence_and_flags(simulator, workload):
    """``remap_every=N`` marks exactly the frames at indices 0, N, 2N, ..."""
    report = simulator.run(
        workload, num_frames=20, offered_fps=500.0, remap_every=7
    )
    remapped = [event.index for event in report.events if event.remapped]
    assert remapped == [0, 7, 14]


def test_remap_marks_apply_even_to_dropped_frames(simulator, workload):
    """A swap frame arriving into a busy pipe is both remapped and dropped."""
    report = simulator.run(
        workload, num_frames=40, offered_fps=2000.0, remap_every=3
    )
    both = [e for e in report.events if e.remapped and e.dropped]
    assert both  # the cadences collide somewhere in 40 frames
    # Dropped swap frames must not contribute mapping energy.
    delivered_remaps = [
        e for e in report.events if e.remapped and not e.dropped
    ]
    baseline = simulator.run(workload, num_frames=40, offered_fps=2000.0)
    assert report.total_energy_j > baseline.total_energy_j
    assert delivered_remaps  # some swaps do land


def test_remap_energy_scales_with_swap_count(simulator, workload):
    sparse = simulator.run(
        workload, num_frames=40, offered_fps=500.0, remap_every=20
    )
    dense = simulator.run(
        workload, num_frames=40, offered_fps=500.0, remap_every=5
    )
    assert dense.total_energy_j > sparse.total_energy_j
    assert sum(e.remapped for e in dense.events) == 8
    assert sum(e.remapped for e in sparse.events) == 2


def test_empty_report_statistics():
    from repro.sim.stream import StreamReport

    report = StreamReport()
    assert report.frames == 0
    assert report.drop_rate == 0.0
    assert report.sustained_fps == 0.0
    assert report.average_power_w == 0.0
    assert math.isnan(report.mean_latency_s)


# ----------------------------------------------------------------------
# SLO helpers (PR 5 growth: percentiles + deadline accounting)
# ----------------------------------------------------------------------
def test_nearest_rank_percentile():
    from repro.sim.stream import nearest_rank_percentile

    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert nearest_rank_percentile(values, 0.5) == 3.0
    assert nearest_rank_percentile(values, 0.99) == 5.0
    assert nearest_rank_percentile(values, 1.0) == 5.0
    assert nearest_rank_percentile([7.0], 0.01) == 7.0
    assert math.isnan(nearest_rank_percentile([], 0.5))
    with pytest.raises(ValueError):
        nearest_rank_percentile(values, 0.0)
    with pytest.raises(ValueError):
        nearest_rank_percentile(values, 1.1)


def test_latency_percentiles_and_deadline_hit_rate(simulator, workload):
    report = simulator.run(workload, num_frames=40, offered_fps=2000.0)
    p50 = report.latency_percentile(0.5)
    assert p50 <= report.p99_latency_s
    # Delivered latencies all equal the sequential frame time here, so
    # the deadline hit rate steps from 0 to delivered/offered at it.
    delivered = report.frames - report.dropped
    latency = report.events[0].latency_s
    assert report.deadline_hit_rate(latency) == delivered / report.frames
    assert report.deadline_hit_rate(latency / 2) == 0.0
    with pytest.raises(ValueError):
        report.deadline_hit_rate(0.0)


def test_deadline_hit_rate_empty_report():
    from repro.sim.stream import StreamReport

    assert StreamReport().deadline_hit_rate(0.01) == 0.0
