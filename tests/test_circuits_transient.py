"""Tests for repro.circuits.transient — waveform toolkit."""

import numpy as np
import pytest

from repro.circuits.transient import (
    TransientResult,
    clock_wave,
    integrate_rc,
    periodic_pulse_wave,
    pulse_wave,
    rc_settle,
    time_grid,
)


def test_time_grid_span_and_step():
    times = time_grid(10e-9, 1e-9)
    assert times[0] == 0.0
    assert times[-1] == pytest.approx(10e-9)
    np.testing.assert_allclose(np.diff(times), 1e-9)


def test_time_grid_validation():
    with pytest.raises(ValueError):
        time_grid(1e-9, 2e-9)
    with pytest.raises(ValueError):
        time_grid(-1.0, 1e-9)


def test_clock_duty_cycle():
    times = time_grid(100e-9, 0.1e-9)
    clk = clock_wave(times, 10e-9, duty=0.3)
    high_fraction = (clk > 0.5).mean()
    assert high_fraction == pytest.approx(0.3, abs=0.02)


def test_clock_phase_shift():
    times = time_grid(20e-9, 0.1e-9)
    base = clock_wave(times, 10e-9)
    shifted = clock_wave(times, 10e-9, phase_s=5e-9)
    # Half-period shift inverts the waveform (away from edges).
    assert base[0] != shifted[0]


def test_pulse_window():
    times = time_grid(10e-9, 0.1e-9)
    pulse = pulse_wave(times, 2e-9, 4e-9)
    assert pulse[np.abs(times - 3e-9).argmin()] == 1.0
    assert pulse[np.abs(times - 5e-9).argmin()] == 0.0
    with pytest.raises(ValueError):
        pulse_wave(times, 4e-9, 2e-9)


def test_periodic_pulse():
    times = time_grid(30e-9, 0.1e-9)
    wave = periodic_pulse_wave(times, period_s=10e-9, start_s=0.0, width_s=2e-9)
    assert wave[np.abs(times - 1e-9).argmin()] == 1.0
    assert wave[np.abs(times - 11e-9).argmin()] == 1.0
    assert wave[np.abs(times - 5e-9).argmin()] == 0.0


def test_rc_settle_converges():
    times = time_grid(10e-9, 0.01e-9)
    trace = rc_settle(times, 0.0, 1.0, tau_s=0.5e-9, start_s=1e-9)
    assert trace[0] == 0.0
    assert trace[-1] == pytest.approx(1.0, abs=1e-6)
    # At one tau past start, ~63% settled.
    index = np.abs(times - 1.5e-9).argmin()
    assert trace[index] == pytest.approx(1 - np.exp(-1), abs=0.01)


def test_integrate_rc_tracks_step():
    times = time_grid(10e-9, 0.01e-9)
    target = np.where(times > 2e-9, 1.0, 0.0)
    trace = integrate_rc(times, target, tau_s=0.3e-9)
    assert trace[-1] == pytest.approx(1.0, abs=1e-6)
    assert np.all(trace <= 1.0 + 1e-12)


def test_integrate_rc_shape_check():
    times = time_grid(1e-9, 0.1e-9)
    with pytest.raises(ValueError):
        integrate_rc(times, np.zeros(3), tau_s=1e-9)


def test_transient_result_container():
    times = time_grid(1e-9, 0.1e-9)
    result = TransientResult(times_s=times)
    result.add("v", np.ones_like(times))
    assert "v" in result
    assert result.names() == ["v"]
    assert result.sample("v", 0.5e-9) == 1.0
    assert len(result.window("v", 0.0, 0.5e-9)) == 5
    with pytest.raises(ValueError):
        result.add("bad", np.zeros(3))
