"""Tests for repro.core.pipeline — hardware-in-the-loop inference."""

import numpy as np
import pytest

from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.nn.models import FirstLayerConfig, build_lenet


@pytest.fixture
def qat_model():
    return build_lenet(
        num_classes=4,
        input_size=16,
        first_layer=FirstLayerConfig(weight_bits=3),
        seed=0,
    )


def _opc(bits=3, **kwargs):
    return OpticalProcessingCore(
        OISAConfig().with_weight_bits(bits), seed=1, **kwargs
    )


def test_pipeline_programs_on_construction(qat_model):
    opc = _opc()
    pipeline = HardwareFirstLayerPipeline(qat_model, opc)
    assert opc.programmed.realized.shape == pipeline.conv.weight.data.shape


def test_forward_shape(qat_model):
    pipeline = HardwareFirstLayerPipeline(qat_model, _opc())
    x = np.random.default_rng(0).uniform(0, 1, (6, 1, 16, 16))
    logits = pipeline.forward(x, batch_size=4)
    assert logits.shape == (6, 4)


def test_hardware_close_to_software_when_ideal(qat_model):
    from dataclasses import replace

    from repro.circuits.awc import AwcDesign

    ideal_config = replace(
        OISAConfig().with_weight_bits(3),
        awc_design=AwcDesign(
            num_bits=3, mismatch_sigma=0.0, offset_sigma_a=0.0, compression_alpha=0.0
        ),
    )
    opc = OpticalProcessingCore(
        ideal_config, seed=1, enable_crosstalk=False, enable_read_noise=False
    )
    pipeline = HardwareFirstLayerPipeline(qat_model, opc)
    x = np.random.default_rng(1).uniform(0, 1, (8, 1, 16, 16))
    hardware = pipeline.forward(x)
    software = qat_model.forward(x, training=False)
    np.testing.assert_allclose(hardware, software, atol=1e-8)


def test_hardware_differs_with_noise(qat_model):
    pipeline = HardwareFirstLayerPipeline(qat_model, _opc())
    x = np.random.default_rng(2).uniform(0, 1, (8, 1, 16, 16))
    hardware = pipeline.forward(x)
    software = qat_model.forward(x, training=False)
    assert not np.allclose(hardware, software)


def test_evaluate_returns_fraction(qat_model):
    pipeline = HardwareFirstLayerPipeline(qat_model, _opc())
    x = np.random.default_rng(3).uniform(0, 1, (10, 1, 16, 16))
    labels = np.random.default_rng(4).integers(0, 4, 10)
    accuracy = pipeline.evaluate(x, labels)
    assert 0.0 <= accuracy <= 1.0


def test_weight_error_report(qat_model):
    pipeline = HardwareFirstLayerPipeline(qat_model, _opc())
    report = pipeline.weight_error_report()
    assert report["mapping_iterations"] == 100
    assert 0.0 < report["relative_error"] < 0.1


def test_float_baseline_rejected():
    baseline = build_lenet(
        num_classes=4,
        input_size=16,
        first_layer=FirstLayerConfig(weight_bits=None, ternary_input=False),
        seed=0,
    )
    with pytest.raises(ValueError):
        HardwareFirstLayerPipeline(baseline, _opc())
