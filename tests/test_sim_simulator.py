"""Tests for repro.sim.simulator — the in-house simulator."""

import pytest

from repro.core.mapping import ConvWorkload, MlpWorkload
from repro.sim.reports import render_report
from repro.sim.simulator import InHouseSimulator


@pytest.fixture
def simulator():
    return InHouseSimulator()


@pytest.fixture
def workload():
    return ConvWorkload(3, 64, 3, 128, 128, padding=1)


def test_oisa_report_fields(simulator, workload):
    report = simulator.simulate_oisa_conv(workload)
    assert report.platform == "OISA"
    assert report.compute_cycles == workload.windows_per_channel
    assert report.efficiency_tops_per_watt == pytest.approx(6.68, rel=0.03)
    assert report.frame_energy_j > 0.0


def test_oisa_bit_width_override(simulator, workload):
    report = simulator.simulate_oisa_conv(workload, weight_bits=2)
    assert report.weight_bits == 2


def test_include_mapping_adds_energy(simulator, workload):
    steady = simulator.simulate_oisa_conv(workload)
    first = simulator.simulate_oisa_conv(workload, include_mapping=True)
    assert first.frame_energy_j > steady.frame_energy_j


def test_oisa_mlp_simulation(simulator):
    workload = MlpWorkload(input_features=784, output_features=100)
    report = simulator.simulate_oisa_mlp(workload)
    assert report.compute_cycles == 20  # from the mapping plan
    assert report.frame_energy_j > 0.0


def test_baseline_platforms(simulator, workload):
    for platform, expected_name in (
        ("crosslight", "Crosslight"),
        ("appcip", "AppCip"),
        ("asic", "ASIC"),
    ):
        report = simulator.simulate_baseline(platform, workload)
        assert report.platform == expected_name
        assert report.average_power_w > 0.0


def test_unknown_platform_rejected(simulator, workload):
    with pytest.raises(ValueError):
        simulator.simulate_baseline("tpu", workload)


def test_compare_all_order_and_winner(simulator, workload):
    reports = simulator.compare_all(workload, weight_bits=4)
    assert [r.platform for r in reports] == ["OISA", "Crosslight", "AppCip", "ASIC"]
    oisa_power = reports[0].average_power_w
    for report in reports[1:]:
        assert report.average_power_w > oisa_power


def test_render_report_table(simulator, workload):
    reports = simulator.compare_all(workload)
    text = render_report(reports, title="cmp")
    assert "OISA" in text and "ASIC" in text
    assert text.splitlines()[0] == "cmp"
