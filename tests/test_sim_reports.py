"""Tests for repro.sim.reports."""

import pytest

from repro.core.energy import PowerBreakdown
from repro.sim.reports import SimulationReport, render_report


def _report(platform="OISA", bits=4):
    return SimulationReport(
        platform=platform,
        workload="conv3x3-64k-3c-128x128",
        weight_bits=bits,
        compute_cycles=16384,
        compute_time_s=0.914e-6,
        frame_energy_j=1.2e-6,
        average_power_w=1.2e-3,
        breakdown=PowerBreakdown({"vcsel": 0.5e-3, "ted": 0.25e-3}),
        peak_throughput_tops=7.17,
        efficiency_tops_per_watt=6.67,
        frame_rate_fps=1000.0,
    )


def test_energy_conversion_property():
    report = _report()
    assert report.energy_per_frame_uj == pytest.approx(1.2)


def test_render_report_columns():
    text = render_report([_report(), _report("ASIC", 2)], title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "platform" in lines[1]
    assert any("OISA" in line for line in lines)
    assert any("ASIC" in line for line in lines)


def test_render_report_empty_list():
    text = render_report([])
    assert "platform" in text
