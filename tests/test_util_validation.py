"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_in_range,
    check_int_in,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability,
)


def test_check_positive():
    assert check_positive("x", 1.5) == 1.5
    for bad in (0, -1):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


def test_check_non_negative():
    assert check_non_negative("x", 0.0) == 0.0
    with pytest.raises(ValueError):
        check_non_negative("x", -1e-9)


def test_check_in_range_inclusive():
    assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
    assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0
    with pytest.raises(ValueError):
        check_in_range("x", 1.0001, 0.0, 1.0)


def test_check_probability():
    assert check_probability("p", 0.5) == 0.5
    with pytest.raises(ValueError):
        check_probability("p", 1.5)


def test_check_power_of_two():
    for good in (1, 2, 4, 1024):
        assert check_power_of_two("n", good) == good
    for bad in (0, 3, -4, 6):
        with pytest.raises(ValueError):
            check_power_of_two("n", bad)


def test_check_int_in():
    assert check_int_in("k", 3, (3, 5, 7)) == 3
    with pytest.raises(ValueError):
        check_int_in("k", 4, (3, 5, 7))
