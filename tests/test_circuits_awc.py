"""Tests for repro.circuits.awc — the Fig. 4 converter."""

import numpy as np
import pytest

from repro.circuits.awc import AwcCircuit, AwcDesign


@pytest.fixture
def awc():
    return AwcCircuit(seed=7)


def test_sixteen_levels_for_four_bits(awc):
    levels = awc.all_levels_a()
    assert len(levels) == 16
    assert levels[0] == pytest.approx(0.0)


def test_full_scale_near_400ua(awc):
    # Fig. 4(b): the staircase tops out around 400 uA.
    assert 330e-6 < awc.all_levels_a().max() < 430e-6


def test_fixed_full_scale_across_bit_widths():
    # The MR tuning range pins the full-scale current for every bit-width.
    designs = [AwcDesign(num_bits=b) for b in (1, 2, 3, 4)]
    for design in designs:
        assert design.unit_current_a * (design.num_levels - 1) == pytest.approx(
            design.full_scale_current_a
        )


def test_levels_monotonic_at_default_mismatch(awc):
    assert awc.monotonic()


def test_ideal_levels_linear(awc):
    codes = np.arange(16)
    ideal = awc.ideal_level_a(codes)
    np.testing.assert_allclose(np.diff(ideal), awc.design.unit_current_a)


def test_code_range_validated(awc):
    with pytest.raises(ValueError):
        awc.level_current_a(16)
    with pytest.raises(ValueError):
        awc.level_current_a(-1)


def test_mismatch_frozen_per_instance(awc):
    a = awc.all_levels_a()
    b = awc.all_levels_a()
    np.testing.assert_array_equal(a, b)


def test_same_seed_same_device():
    a = AwcCircuit(seed=3).all_levels_a()
    b = AwcCircuit(seed=3).all_levels_a()
    np.testing.assert_array_equal(a, b)
    c = AwcCircuit(seed=4).all_levels_a()
    assert not np.allclose(a, c)


def test_dnl_inl_zero_for_ideal_converter():
    design = AwcDesign(mismatch_sigma=0.0, offset_sigma_a=0.0, compression_alpha=0.0)
    ideal = AwcCircuit(design, seed=0)
    np.testing.assert_allclose(ideal.dnl_lsb(), 0.0, atol=1e-12)
    np.testing.assert_allclose(ideal.inl_lsb(), 0.0, atol=1e-12)


def test_compression_bends_top_codes():
    design = AwcDesign(mismatch_sigma=0.0, offset_sigma_a=0.0, compression_alpha=0.1)
    circuit = AwcCircuit(design, seed=0)
    inl = circuit.inl_lsb()
    # Endpoint-fit INL of a quadratic sag peaks mid-scale.
    assert inl[8] > abs(inl[1])


def test_level_separation_shrinks_with_bits():
    # The architectural reason [4:2] stops helping: fixed absolute errors
    # against shrinking level spacing.
    seps = {}
    for bits in (2, 3, 4):
        circuit = AwcCircuit(AwcDesign(num_bits=bits), seed=5)
        seps[bits] = circuit.min_level_separation_a()
    assert seps[4] < seps[3] < seps[2]


def test_staircase_transient_reaches_each_level(awc):
    result = awc.staircase_transient()
    # At the end of each dwell the output has settled to its level.
    for code in range(16):
        t = (code + 1) * 1e-9 - 0.05e-9
        sampled = result.sample("Ituning", t)
        assert sampled == pytest.approx(float(awc.level_current_a(code)), rel=0.02)


def test_staircase_duration(awc):
    result = awc.staircase_transient()
    assert result.times_s[-1] == pytest.approx(16e-9)


def test_power_accounting(awc):
    static = awc.average_power_w(0.0)
    busy = awc.average_power_w(1e9)
    assert static == pytest.approx(awc.design.static_power_w)
    assert busy > static


def test_design_validation():
    with pytest.raises(ValueError):
        AwcDesign(num_bits=5)
    with pytest.raises(ValueError):
        AwcDesign(full_scale_current_a=-1.0)
