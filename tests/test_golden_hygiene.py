"""Golden-regen hygiene: every golden is enumerable and safely rewritable.

Two failure modes this file exists to prevent:

* **orphan goldens** — a committed file under ``tests/goldens/`` whose
  regeneration command nobody remembers.  ``REGEN`` maps every golden to
  the exact command that rewrites it; the enumeration test fails the
  moment a golden appears (or disappears) without updating the map.
* **sloppy regen runs** — the historical ``if "--write" in sys.argv``
  pattern silently printed the docstring on a typo'd flag and wrote from
  any working directory.  The strict entry (``tests/golden_cli.py``)
  rejects unknown arguments before a single byte is written and refuses
  to run outside the repo root; the subprocess tests here pin both.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys

import pytest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
GOLDEN_DIR = os.path.join(TESTS_DIR, "goldens")

#: Every committed golden and the command that regenerates it, run from
#: the repo root.  Adding a golden without registering it here fails
#: ``test_every_golden_has_a_registered_regen_command``.
REGEN: dict[str, str] = {
    "serve_default.json": (
        "PYTHONPATH=src python tests/test_engine_scheduler.py --write"
    ),
    "table1_repr.txt": "PYTHONPATH=src python tests/test_goldens.py --write",
    "table1_render.txt": "PYTHONPATH=src python tests/test_goldens.py --write",
    "fig9_repr.txt": "PYTHONPATH=src python tests/test_goldens.py --write",
    "fig9_render.txt": "PYTHONPATH=src python tests/test_goldens.py --write",
    "claims_repr.txt": "PYTHONPATH=src python tests/test_goldens.py --write",
}

#: The distinct ``--write`` entrypoint scripts, relative to the repo root.
WRITE_SCRIPTS = (
    os.path.join("tests", "test_goldens.py"),
    os.path.join("tests", "test_engine_scheduler.py"),
)


def _golden_digest() -> dict[str, str]:
    digests = {}
    for name in sorted(os.listdir(GOLDEN_DIR)):
        with open(os.path.join(GOLDEN_DIR, name), "rb") as handle:
            digests[name] = hashlib.sha256(handle.read()).hexdigest()
    return digests


def _run(script: str, *args: str, cwd: str = REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, script), *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


# ----------------------------------------------------------------------
# Enumeration: no orphan goldens, no stale map entries
# ----------------------------------------------------------------------
def test_every_golden_has_a_registered_regen_command():
    on_disk = sorted(os.listdir(GOLDEN_DIR))
    assert on_disk == sorted(REGEN), (
        "tests/goldens/ and the REGEN map in tests/test_golden_hygiene.py "
        "disagree — register (or retire) the regen command for the "
        f"difference: {sorted(set(on_disk) ^ set(REGEN))}"
    )
    for name, command in REGEN.items():
        script = command.split("python ", 1)[1].split(" ")[0]
        assert os.path.exists(os.path.join(REPO_ROOT, script)), (
            f"regen command for {name} names a missing script: {script}"
        )
        assert command.endswith("--write")


def test_goldens_are_nonempty():
    for name in REGEN:
        path = os.path.join(GOLDEN_DIR, name)
        assert os.path.getsize(path) > 0, f"golden {name} is empty"


# ----------------------------------------------------------------------
# Strict entry: unknown args fail loudly, before anything is written
# ----------------------------------------------------------------------
@pytest.mark.parametrize("script", WRITE_SCRIPTS)
def test_unknown_args_fail_before_writing(script):
    before = _golden_digest()
    result = _run(script, "--write", "--bogus-flag")
    assert result.returncode != 0, (
        f"{script} accepted an unknown argument:\n{result.stdout}"
    )
    assert "bogus-flag" in result.stderr
    assert _golden_digest() == before, (
        f"{script} modified goldens despite the argument error"
    )


@pytest.mark.parametrize("script", WRITE_SCRIPTS)
def test_typoed_write_flag_is_rejected(script):
    before = _golden_digest()
    result = _run(script, "--wirte")
    assert result.returncode != 0
    assert _golden_digest() == before


# ----------------------------------------------------------------------
# Repo-root cwd assertion
# ----------------------------------------------------------------------
@pytest.mark.parametrize("script", WRITE_SCRIPTS)
def test_write_refuses_to_run_outside_the_repo_root(script, tmp_path):
    before = _golden_digest()
    result = _run(script, "--write", cwd=str(tmp_path))
    assert result.returncode != 0
    assert "repo root" in result.stderr
    assert _golden_digest() == before


@pytest.mark.parametrize("script", WRITE_SCRIPTS)
def test_bare_invocation_prints_docs_and_writes_nothing(script):
    before = _golden_digest()
    result = _run(script)
    assert result.returncode == 0
    assert "Regenerate" in result.stdout  # the module docstring
    assert _golden_digest() == before
