"""Tests for the add-drop port and RIN noise extensions."""

import numpy as np
import pytest

from repro.photonics.microring import MicroringResonator
from repro.photonics.noise import RelativeIntensityNoise


# --------------------------------------------------------------------------
# Drop port
# --------------------------------------------------------------------------
def test_drop_peaks_on_resonance():
    ring = MicroringResonator()
    on_res = float(ring.drop_transmission(ring.design.resonance_wavelength_m))
    off_res = float(
        ring.drop_transmission(ring.design.resonance_wavelength_m + 2e-9)
    )
    assert on_res > 10 * off_res


def test_drop_complements_through():
    # Where the through port dips, the drop port peaks (energy routed).
    ring = MicroringResonator()
    wavelengths = np.linspace(1549e-9, 1551e-9, 801)
    through = ring.through_transmission(wavelengths)
    drop = ring.drop_transmission(wavelengths)
    assert wavelengths[np.argmin(through)] == pytest.approx(
        wavelengths[np.argmax(drop)], abs=2 * (wavelengths[1] - wavelengths[0])
    )


def test_drop_bounded_and_validated():
    ring = MicroringResonator()
    wavelengths = np.linspace(1545e-9, 1555e-9, 501)
    drop = ring.drop_transmission(wavelengths)
    assert np.all(drop >= 0.0) and np.all(drop <= 1.0)
    with pytest.raises(ValueError):
        ring.drop_transmission(1550e-9, drop_coupling=1.5)


def test_weaker_drop_coupling_lower_peak():
    ring = MicroringResonator()
    lam = ring.design.resonance_wavelength_m
    strong = float(ring.drop_transmission(lam, drop_coupling=0.95))
    weak = float(ring.drop_transmission(lam, drop_coupling=0.999))
    assert weak < strong


# --------------------------------------------------------------------------
# RIN
# --------------------------------------------------------------------------
def test_rin_sigma_formula():
    noise = RelativeIntensityNoise(rin_db_per_hz=-140.0, bandwidth_hz=25e9)
    expected = np.sqrt(10 ** (-14.0) * 25e9)
    assert noise.relative_sigma == pytest.approx(expected)
    assert noise.relative_sigma < 0.02  # ~1.6% over the full bandwidth


def test_rin_statistics():
    noise = RelativeIntensityNoise(rin_db_per_hz=-120.0, bandwidth_hz=25e9, seed=0)
    values = np.full(20000, 2.0)
    noisy = noise.apply(values)
    assert noisy.mean() == pytest.approx(2.0, rel=1e-2)
    assert noisy.std() == pytest.approx(2.0 * noise.relative_sigma, rel=0.05)


def test_rin_scales_with_signal():
    noise = RelativeIntensityNoise(rin_db_per_hz=-120.0, seed=1)
    small = noise.apply(np.full(5000, 1.0)).std()
    noise2 = RelativeIntensityNoise(rin_db_per_hz=-120.0, seed=1)
    large = noise2.apply(np.full(5000, 10.0)).std()
    assert large == pytest.approx(10 * small, rel=1e-9)


def test_rin_rejects_positive_db():
    with pytest.raises(ValueError):
        RelativeIntensityNoise(rin_db_per_hz=3.0)
