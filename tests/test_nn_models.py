"""Tests for repro.nn.models — the Table II network zoo."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D
from repro.nn.models import (
    FirstLayerConfig,
    TernaryInputLayer,
    build_lenet,
    build_resnet18,
    build_vgg16,
    find_first_quant_conv,
    set_first_layer_weight_transform,
)
from repro.nn.quant import QuantConv2D


def test_lenet_output_shape():
    model = build_lenet(num_classes=10, seed=0)
    x = np.random.default_rng(0).uniform(0, 1, (2, 1, 28, 28))
    assert model.forward(x).shape == (2, 10)


def test_resnet18_output_shape():
    model = build_resnet18(num_classes=10, width_multiplier=0.125, seed=0)
    x = np.random.default_rng(1).uniform(0, 1, (2, 3, 32, 32))
    assert model.forward(x).shape == (2, 10)


def test_vgg16_output_shape():
    model = build_vgg16(num_classes=100, width_multiplier=0.125, seed=0)
    x = np.random.default_rng(2).uniform(0, 1, (2, 3, 32, 32))
    assert model.forward(x).shape == (2, 100)


def test_resnet18_depth():
    # 1 stem + 4 stages x 2 blocks x 2 convs + shortcuts + 1 fc: count convs.
    model = build_resnet18(width_multiplier=0.125, seed=0)

    def count_convs(layer):
        from repro.nn.layers import Residual, Sequential

        if isinstance(layer, Conv2D):
            return 1
        if isinstance(layer, Sequential):
            return sum(count_convs(inner) for inner in layer)
        if isinstance(layer, Residual):
            total = count_convs(layer.main)
            if layer.shortcut is not None:
                total += count_convs(layer.shortcut)
            return total
        return 0

    convs = count_convs(model)
    # 1 stem + 16 block convs + 3 projection shortcuts = 20.
    assert convs == 20


def test_vgg16_has_16_weight_layers():
    from repro.nn.layers import Dense

    model = build_vgg16(width_multiplier=0.125, seed=0)
    convs = sum(isinstance(layer, Conv2D) for layer in model)
    denses = sum(isinstance(layer, Dense) for layer in model)
    assert convs == 13
    assert denses == 3


def test_first_layer_quantized_by_default():
    model = build_lenet(seed=0)
    assert isinstance(model[0], TernaryInputLayer)
    conv = find_first_quant_conv(model)
    assert isinstance(conv, QuantConv2D)
    assert conv.bits == 4


def test_baseline_has_float_first_layer():
    config = FirstLayerConfig(weight_bits=None, ternary_input=False)
    model = build_lenet(first_layer=config, seed=0)
    assert not isinstance(model[0], TernaryInputLayer)
    assert find_first_quant_conv(model) is None


def test_config_labels():
    assert FirstLayerConfig(weight_bits=4).label == "[4:2]"
    assert FirstLayerConfig(weight_bits=1).label == "[1:2]"
    assert FirstLayerConfig(weight_bits=None).label == "baseline"


def test_config_validation():
    with pytest.raises(ValueError):
        FirstLayerConfig(weight_bits=5)


def test_width_multiplier_scales_parameters():
    small = build_resnet18(width_multiplier=0.125, seed=0).num_parameters()
    large = build_resnet18(width_multiplier=0.25, seed=0).num_parameters()
    assert large > 2 * small


def test_same_seed_same_init():
    a = build_lenet(seed=5)
    b = build_lenet(seed=5)
    np.testing.assert_array_equal(a.parameters()[0].data, b.parameters()[0].data)


def test_set_weight_transform():
    model = build_lenet(seed=0)
    set_first_layer_weight_transform(model, lambda w: w * 0.0)
    conv = find_first_quant_conv(model)
    x = np.random.default_rng(3).uniform(0, 1, (1, 1, 28, 28))
    model.forward(x)
    np.testing.assert_allclose(conv.effective_weight(), 0.0)


def test_set_weight_transform_rejects_baseline():
    config = FirstLayerConfig(weight_bits=None, ternary_input=False)
    model = build_lenet(first_layer=config, seed=0)
    with pytest.raises(ValueError):
        set_first_layer_weight_transform(model, lambda w: w)


def test_models_train_mode_backward():
    model = build_resnet18(width_multiplier=0.125, seed=0)
    x = np.random.default_rng(4).uniform(0, 1, (2, 3, 32, 32))
    out = model.forward(x, training=True)
    model.zero_grad()
    model.backward(np.ones_like(out))
    grads = [np.abs(p.grad).sum() for p in model.parameters()]
    assert sum(g > 0 for g in grads) > len(grads) * 0.8
