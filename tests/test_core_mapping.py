"""Tests for repro.core.mapping — Section III-B arithmetic."""

import pytest

from repro.core.config import OISAConfig
from repro.core.mapping import (
    ConvWorkload,
    MlpWorkload,
    arms_per_kernel,
    kernels_per_bank,
    macs_per_cycle,
    plan_convolution,
    plan_mlp,
)


@pytest.fixture
def cfg():
    return OISAConfig()


def test_paper_macs_per_cycle(cfg):
    # The paper's exact numbers: 3600 / 2000 / 3920 for K = 3 / 5 / 7.
    assert macs_per_cycle(cfg, 3) == 3600
    assert macs_per_cycle(cfg, 5) == 2000
    assert macs_per_cycle(cfg, 7) == 3920


def test_kernels_per_bank(cfg):
    assert kernels_per_bank(cfg, 3) == 5
    assert kernels_per_bank(cfg, 5) == 1
    assert kernels_per_bank(cfg, 7) == 1


def test_arms_per_kernel(cfg):
    assert arms_per_kernel(cfg, 3) == 1
    assert arms_per_kernel(cfg, 5) == 5
    assert arms_per_kernel(cfg, 7) == 5


def test_unsupported_kernel_sizes(cfg):
    with pytest.raises(ValueError):
        kernels_per_bank(cfg, 4)
    with pytest.raises(ValueError):
        ConvWorkload(9, 1, 1, 32, 32)


def test_workload_output_geometry():
    workload = ConvWorkload(3, 64, 3, 128, 128, stride=1, padding=1)
    assert workload.output_height == 128
    assert workload.output_width == 128
    assert workload.windows_per_channel == 128 * 128
    assert workload.total_macs == 128 * 128 * 64 * 3 * 9
    assert workload.total_ops == 2 * workload.total_macs


def test_strided_workload_geometry():
    workload = ConvWorkload(3, 8, 1, 32, 32, stride=2, padding=1)
    assert workload.output_height == 16


def test_plan_single_round(cfg):
    # ResNet18 L1: 64 x 3 = 192 planes <= 400 slots -> one mapping round.
    workload = ConvWorkload(3, 64, 3, 128, 128, padding=1)
    plan = plan_convolution(cfg, workload)
    assert plan.kernel_slots == 400
    assert plan.mapping_rounds == 1
    assert plan.compute_cycles == workload.windows_per_channel


def test_plan_multiple_rounds(cfg):
    # 256 kernels x 3 channels = 768 planes -> 2 rounds.
    workload = ConvWorkload(3, 256, 3, 64, 64, padding=1)
    plan = plan_convolution(cfg, workload)
    assert plan.mapping_rounds == 2
    assert plan.compute_cycles == 2 * workload.windows_per_channel


def test_plan_5x5_uses_banks(cfg):
    workload = ConvWorkload(5, 80, 1, 64, 64)
    plan = plan_convolution(cfg, workload)
    assert plan.kernel_slots == 80
    assert plan.kernels_per_bank == 1
    assert plan.macs_per_cycle == 2000


def test_utilization_bounded(cfg):
    workload = ConvWorkload(3, 64, 3, 128, 128, padding=1)
    plan = plan_convolution(cfg, workload)
    assert 0.0 < plan.mr_utilization <= 1.0
    # 192 planes x 9 MRs / 4000 MRs.
    assert plan.mr_utilization == pytest.approx(192 * 9 / 4000)


def test_mlp_plan_splitting(cfg):
    # 784-input MLP: each neuron spans ceil(784/50) = 16 banks.
    workload = MlpWorkload(input_features=784, output_features=100)
    plan = plan_mlp(cfg, workload)
    assert plan.chunks_per_neuron == 16
    assert plan.neurons_per_round == 5  # 80 banks / 16 chunks
    assert plan.mapping_rounds == 20
    assert plan.vom_combines == 100 * 15


def test_mlp_small_layer_single_round(cfg):
    workload = MlpWorkload(input_features=50, output_features=10)
    plan = plan_mlp(cfg, workload)
    assert plan.chunks_per_neuron == 1
    assert plan.mapping_rounds == 1
    assert plan.vom_combines == 0


def test_workload_validation():
    with pytest.raises(ValueError):
        ConvWorkload(3, 0, 1, 32, 32)
    with pytest.raises(ValueError):
        ConvWorkload(3, 1, 1, 32, 32, padding=-1)
    with pytest.raises(ValueError):
        MlpWorkload(0, 10)
