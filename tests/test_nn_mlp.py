"""Tests for the MLP path: QuantDense, build_mlp, VOM-split inference."""

import numpy as np
import pytest

from repro.core.config import OISAConfig
from repro.core.mapping import MlpWorkload, plan_mlp
from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.nn.models import FirstLayerConfig, build_mlp
from repro.nn.optim import SGD, CosineLR
from repro.nn.quant import QuantDense
from repro.nn.train import Trainer


def test_quant_dense_forward_uses_quantized_weights():
    layer = QuantDense(8, 4, bits=2, seed=0)
    x = np.random.default_rng(0).uniform(0, 1, (3, 8))
    out = layer.forward(x)
    assert out.shape == (3, 4)
    effective = layer.effective_weight()
    codes = np.round(effective / layer.quantizer.scale(layer.weight.data))
    assert np.abs(codes).max() <= 3


def test_quant_dense_gradient_flow():
    layer = QuantDense(6, 3, bits=3, seed=1)
    x = np.random.default_rng(1).normal(size=(4, 6))
    out = layer.forward(x)
    layer.zero_grad()
    grad_x = layer.backward(np.ones_like(out))
    assert grad_x.shape == x.shape
    assert np.abs(layer.weight.grad).sum() > 0.0


def test_quant_dense_transform_hook():
    layer = QuantDense(4, 2, bits=2, seed=2, weight_transform=lambda w: w * 0.5)
    x = np.ones((1, 4))
    base = layer.quantizer.quantize(layer.weight.data)
    expected = x @ (base * 0.5).T
    np.testing.assert_allclose(layer.forward(x), expected)


def test_build_mlp_shapes():
    model = build_mlp(num_classes=10, in_features=784, seed=0)
    x = np.random.default_rng(2).uniform(0, 1, (5, 784))
    assert model.forward(x).shape == (5, 10)


def test_build_mlp_first_layer_quantized():
    model = build_mlp(seed=0)
    assert isinstance(model[1], QuantDense)
    baseline = build_mlp(
        first_layer=FirstLayerConfig(weight_bits=None, ternary_input=False), seed=0
    )
    assert not isinstance(baseline[0], QuantDense)


def test_mlp_trains_on_toy_problem():
    rng = np.random.default_rng(3)
    x = rng.uniform(0, 1, (400, 64))
    y = (x[:, :32].mean(axis=1) > x[:, 32:].mean(axis=1)).astype(int)
    model = build_mlp(
        num_classes=2,
        in_features=64,
        hidden=(32,),
        first_layer=FirstLayerConfig(weight_bits=3),
        seed=0,
    )
    trainer = Trainer(
        model, SGD(model.parameters(), momentum=0.9), CosineLR(0.05, 1e-4), seed=0
    )
    trainer.fit(x, y, epochs=8, batch_size=32)
    assert trainer.evaluate(x, y) > 0.8


def test_mlp_hardware_pipeline_end_to_end():
    rng = np.random.default_rng(4)
    x = rng.uniform(0, 1, (200, 100))
    y = (x[:, :50].mean(axis=1) > x[:, 50:].mean(axis=1)).astype(int)
    model = build_mlp(
        num_classes=2,
        in_features=100,
        hidden=(24,),
        first_layer=FirstLayerConfig(weight_bits=3),
        seed=0,
    )
    trainer = Trainer(
        model, SGD(model.parameters(), momentum=0.9), CosineLR(0.05, 1e-4), seed=0
    )
    trainer.fit(x, y, epochs=8, batch_size=32)
    software = trainer.evaluate(x, y)

    opc = OpticalProcessingCore(OISAConfig().with_weight_bits(3), seed=7)
    pipeline = HardwareFirstLayerPipeline(model, opc)
    assert pipeline.is_dense
    hardware = pipeline.evaluate(x, y)
    assert hardware > software - 0.2


def test_mlp_mapping_plan_consistency():
    # The dense layer the pipeline runs corresponds to a VOM-split plan.
    cfg = OISAConfig()
    workload = MlpWorkload(input_features=100, output_features=24)
    plan = plan_mlp(cfg, workload)
    assert plan.chunks_per_neuron == 2  # 100 inputs over 50-MR banks
    assert plan.vom_combines == 24
