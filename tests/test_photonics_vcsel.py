"""Tests for repro.photonics.vcsel — L-I curve and ternary NRZ encoding."""

import numpy as np
import pytest

from repro.photonics.vcsel import TernaryVcselEncoder, Vcsel


@pytest.fixture
def vcsel():
    return Vcsel()


@pytest.fixture
def encoder():
    return TernaryVcselEncoder()


def test_no_light_below_threshold(vcsel):
    assert float(vcsel.optical_power_w(vcsel.threshold_current_a * 0.5)) == 0.0


def test_li_slope_above_threshold(vcsel):
    i1 = vcsel.threshold_current_a + 1e-3
    i2 = vcsel.threshold_current_a + 2e-3
    p1 = float(vcsel.optical_power_w(i1))
    p2 = float(vcsel.optical_power_w(i2))
    assert (p2 - p1) / 1e-3 == pytest.approx(vcsel.slope_efficiency_w_per_a)


def test_current_for_power_roundtrip(vcsel):
    target = 0.5e-3
    current = vcsel.current_for_power(target)
    assert float(vcsel.optical_power_w(current)) == pytest.approx(target)


def test_electrical_power(vcsel):
    assert float(vcsel.electrical_power_w(1e-3)) == pytest.approx(
        1e-3 * vcsel.forward_voltage_v
    )


def test_ternary_three_distinct_levels(encoder):
    levels = encoder.power_levels_w()
    assert len(levels) == 3
    assert levels[0] < levels[1] < levels[2]
    # NRZ: symbol 0 still emits light (bias above threshold).
    assert levels[0] > 0.0


def test_ternary_levels_equally_spaced(encoder):
    levels = encoder.power_levels_w()
    assert levels[1] - levels[0] == pytest.approx(levels[2] - levels[1])


def test_symbol_range_validated(encoder):
    with pytest.raises(ValueError):
        encoder.drive_current_a(np.array([0, 3]))
    with pytest.raises(ValueError):
        encoder.drive_current_a(np.array([-1]))


def test_bias_must_exceed_threshold():
    with pytest.raises(ValueError):
        TernaryVcselEncoder(bias_current_a=0.0)


def test_symbol_energy_scales_with_time(encoder):
    e1 = encoder.symbol_energy_j(2, 1e-9)
    e2 = encoder.symbol_energy_j(2, 2e-9)
    assert e2 == pytest.approx(2 * e1)


def test_mean_symbol_power_uniform(encoder):
    mean = encoder.mean_symbol_power_w()
    currents = encoder.drive_current_a(np.arange(3))
    expected = float(np.mean(currents)) * encoder.vcsel.forward_voltage_v
    assert mean == pytest.approx(expected)


def test_mean_symbol_power_validates_distribution(encoder):
    with pytest.raises(ValueError):
        encoder.mean_symbol_power_w((0.5, 0.5, 0.5))


def test_nrz_beats_rz_for_active_symbols(encoder):
    # The paper's motivation for always-on biasing: RZ pays warm-up energy.
    symbol_time = 1e-9
    nrz = encoder.symbol_energy_j(1, symbol_time)
    rz = encoder.rz_symbol_energy_j(1, symbol_time)
    assert rz > nrz


def test_rz_zero_symbol_free(encoder):
    assert encoder.rz_symbol_energy_j(0, 1e-9) == 0.0
