"""Tests for repro.engine.chaos — deterministic fleet fault injection."""

import numpy as np
import pytest

from repro.engine import FrameServer
from repro.engine.chaos import (
    CHAOS_KINDS,
    ChaosPlan,
    ChaosSpec,
    ChaosTimeline,
    chaos_plan,
)
from repro.engine.workloads import build_scenario
from repro.nn.models import build_lenet
from repro.sim.faults import FaultSpec


# ----------------------------------------------------------------------
# Specs + named plans
# ----------------------------------------------------------------------
def test_spec_validation():
    with pytest.raises(ValueError, match="unknown chaos kind"):
        ChaosSpec(kind="meteor-strike", at_s=0.0)
    with pytest.raises(ValueError):
        ChaosSpec(kind="node-loss", at_s=0.01)  # windowed kind, no duration
    with pytest.raises(ValueError):
        ChaosSpec(kind="region-outage", at_s=0.0, duration_s=0.01, fraction=1.5)
    with pytest.raises(ValueError):
        ChaosSpec(kind="latency-spike", at_s=0.0, duration_s=0.01, factor=0.0)


def test_named_plans_resolve():
    assert ChaosPlan.named("none") is None
    assert chaos_plan(None) is None
    for name in (
        "node-loss",
        "region-outage",
        "correlated-upsets",
        "cache-storm",
        "latency-spike",
        "rolling",
    ):
        plan = ChaosPlan.named(name)
        assert plan is not None and plan.specs
        assert chaos_plan(name) == plan
        assert chaos_plan(plan) is plan
        for spec in plan.specs:
            assert spec.kind in CHAOS_KINDS
    with pytest.raises(ValueError, match="unknown chaos plan"):
        ChaosPlan.named("meteor-strike")


# ----------------------------------------------------------------------
# Schedule resolution
# ----------------------------------------------------------------------
def test_schedule_is_deterministic_per_seed():
    plan = ChaosPlan.named("rolling")  # jittered onsets + node draws
    assert plan.schedule(4, seed=0) == plan.schedule(4, seed=0)
    assert plan.schedule(4, seed=0) != plan.schedule(4, seed=1)


def test_schedule_is_sorted_and_attributed():
    events = ChaosPlan.named("cache-storm").schedule(3, seed=0)
    assert len(events) == 3  # repeats=3
    assert [e.time_s for e in events] == sorted(e.time_s for e in events)
    assert [e.detail for e in events] == [
        "cache-storm[0]#0",
        "cache-storm[0]#1",
        "cache-storm[0]#2",
    ]
    # count=0 means the whole fleet, per repeat.
    assert all(e.node_ids == (0, 1, 2) for e in events)


def test_schedule_node_sizing():
    # fraction rounds against the fleet size, floor one node.
    outage = ChaosPlan.named("region-outage").schedule(4, seed=0)[0]
    assert len(outage.node_ids) == 2
    assert ChaosPlan.named("region-outage").schedule(1, seed=0)[0].node_ids
    # count larger than the fleet clips.
    spec = ChaosSpec(kind="node-loss", at_s=0.01, duration_s=0.01, count=9)
    assert len(ChaosPlan(specs=(spec,)).schedule(2, seed=0)[0].node_ids) == 2
    # latency spikes are fleet-wide (no node draw).
    spike = ChaosPlan.named("latency-spike").schedule(2, seed=0)[0]
    assert spike.node_ids == ()
    assert spike.fault_spec is None


def test_correlated_upset_carries_its_fault_spec():
    event = ChaosPlan.named("correlated-upsets").schedule(2, seed=0)[0]
    assert event.fault_spec == FaultSpec(dead_mr_rate=0.3, bpd_gain_sigma=0.15)
    assert event.end_s == event.time_s  # point event


# ----------------------------------------------------------------------
# Timeline cursor + latency windows
# ----------------------------------------------------------------------
def test_timeline_due_cursor_fires_each_event_once():
    timeline = ChaosTimeline(ChaosPlan.named("cache-storm"), 2, seed=0)
    assert timeline.due(0.01) == []
    first = timeline.due(0.03)
    assert [e.detail for e in first] == ["cache-storm[0]#0"]
    assert timeline.due(0.03) == []  # already fired
    rest = timeline.due(1.0)
    assert [e.detail for e in rest] == ["cache-storm[0]#1", "cache-storm[0]#2"]
    assert timeline.due(2.0) == []


def test_timeline_latency_factor_windows():
    timeline = ChaosTimeline(ChaosPlan.named("latency-spike"), 2, seed=0)
    (event,) = timeline.events
    assert timeline.latency_factor(event.time_s - 1e-6) == 1.0
    assert timeline.latency_factor(event.time_s) == 3.0
    assert timeline.latency_factor(event.end_s) == 1.0  # half-open window


# ----------------------------------------------------------------------
# End-to-end serving under chaos
# ----------------------------------------------------------------------
def _serve_chaos(plan, frames=96, **kwargs):
    scenario = build_scenario(
        "chaos", frames=frames, offered_fps=2400.0, seed=0
    )
    server = FrameServer(
        num_nodes=2, micro_batch=8, seed=0, policy="slo",
        chaos_plan=plan, **kwargs,
    )
    for key, model in scenario.models.items():
        server.register_model(key, model)
    server.warmup()
    return server.serve_scenario(scenario)


def _digest(report):
    import hashlib

    parts = []
    for resp in report.responses:
        parts.append(
            (resp.index, resp.node_id, resp.event.dropped,
             repr(resp.event.finish_s),
             None if resp.output is None else hashlib.sha256(
                 np.ascontiguousarray(resp.output, dtype=float).tobytes()
             ).hexdigest())
        )
    return parts, repr(report.stream.total_energy_j)


@pytest.mark.parametrize(
    "plan", ["node-loss", "correlated-upsets", "cache-storm", "latency-spike"]
)
def test_chaos_serving_is_deterministic(plan):
    assert _digest(_serve_chaos(plan)) == _digest(_serve_chaos(plan))


def test_node_loss_fires_and_is_audited():
    report = _serve_chaos("node-loss")
    health = report.health
    assert health is not None
    losses = [e for e in health.events if e.kind == "chaos-node-loss"]
    assert len(losses) == 1
    assert health.chaos_events == 1
    # The carrier profile is chaos-only: no organic drift or upsets.
    assert not [e for e in health.events if e.kind == "upset"]


def test_correlated_upsets_trip_recalibration():
    report = _serve_chaos("correlated-upsets", frames=200)
    kinds = [e.kind for e in report.health.events]
    assert "chaos-upset" in kinds
    assert "recalibrated" in kinds
    assert report.health.recalibrations >= 1


def test_cache_storm_forces_remaps():
    calm = _serve_chaos(None)
    storm = _serve_chaos("cache-storm")
    assert storm.cache_misses > calm.cache_misses


def test_latency_spike_stretches_service_times():
    calm = _serve_chaos(None)
    spike = _serve_chaos("latency-spike")
    calm_lat = [
        r.event.latency_s for r in calm.responses if not r.dropped
    ]
    spike_lat = [
        r.event.latency_s for r in spike.responses if not r.dropped
    ]
    assert sum(spike_lat) / len(spike_lat) > sum(calm_lat) / len(calm_lat)


def test_chaos_none_is_bit_identical_to_plain_server():
    frames = np.random.default_rng(3).uniform(0.0, 1.0, (48, 1, 28, 28))

    def run(**kwargs):
        server = FrameServer(num_nodes=2, micro_batch=8, seed=0, **kwargs)
        server.register_model("a", build_lenet(seed=0))
        return server.serve_frames(frames, "a", offered_fps=1500.0)

    plain = run()
    gated = run(chaos_plan=None, retry_policy=None, spares=0, brownout=None)
    assert gated.health is None
    assert gated.resilience is None and gated.brownout is None
    assert plain.stream.total_energy_j == gated.stream.total_energy_j
    for left, right in zip(plain.responses, gated.responses):
        assert left.event == right.event
        if left.output is not None:
            np.testing.assert_array_equal(left.output, right.output)
