"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import DEFAULT_SEED, derive_rng, spawn_seeds


def test_same_seed_same_stream():
    a = derive_rng(42, "x").normal(size=8)
    b = derive_rng(42, "x").normal(size=8)
    np.testing.assert_array_equal(a, b)


def test_different_labels_independent():
    a = derive_rng(42, "alpha").normal(size=8)
    b = derive_rng(42, "beta").normal(size=8)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = derive_rng(1, "x").normal(size=8)
    b = derive_rng(2, "x").normal(size=8)
    assert not np.allclose(a, b)


def test_none_seed_uses_default():
    a = derive_rng(None, "x").normal(size=4)
    b = derive_rng(DEFAULT_SEED, "x").normal(size=4)
    np.testing.assert_array_equal(a, b)


def test_empty_label_stable():
    a = derive_rng(7).normal(size=4)
    b = derive_rng(7).normal(size=4)
    np.testing.assert_array_equal(a, b)


def test_spawn_seeds_deterministic_and_distinct():
    seeds = spawn_seeds(0, 10)
    assert seeds == spawn_seeds(0, 10)
    assert len(set(seeds)) == 10


def test_spawn_seeds_count_validation():
    assert spawn_seeds(0, 0) == []
    with pytest.raises(ValueError):
        spawn_seeds(0, -1)
