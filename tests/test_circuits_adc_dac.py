"""Tests for repro.circuits.adc_dac — baseline converter models."""

import pytest

from repro.circuits.adc_dac import AdcModel, DacModel


def test_adc_energy_exponential_in_bits():
    low = AdcModel(bits=4)
    high = AdcModel(bits=8)
    assert high.energy_per_conversion_j() == pytest.approx(
        low.energy_per_conversion_j() * 16
    )


def test_adc_power_includes_static():
    adc = AdcModel(bits=8)
    assert adc.power_w(0.0) == pytest.approx(adc.static_power_w)
    assert adc.power_w(1e6) > adc.static_power_w


def test_adc_rate_cap():
    adc = AdcModel(bits=8, sample_rate_hz=1e6)
    with pytest.raises(ValueError):
        adc.power_w(2e6)


def test_adc_area_grows_with_bits():
    assert AdcModel(bits=10).area_um2() > AdcModel(bits=6).area_um2()


def test_adc_conversion_time():
    adc = AdcModel(sample_rate_hz=20e6)
    assert adc.conversion_time_s() == pytest.approx(50e-9)


def test_dac_power():
    dac = DacModel(bits=8)
    assert dac.power_w(0.0) == pytest.approx(dac.static_power_w)
    assert dac.power_w(1e6) == pytest.approx(
        dac.static_power_w + dac.energy_per_update_j * 1e6
    )


def test_dac_levels():
    assert DacModel(bits=4).levels == 16


def test_converter_validation():
    with pytest.raises(ValueError):
        AdcModel(bits=0)
    with pytest.raises(ValueError):
        DacModel(bits=0)


def test_awc_cheaper_than_dac_per_update():
    # OISA's core circuit claim: the AWC undercuts a DAC per weight update.
    from repro.circuits.awc import AwcDesign

    awc = AwcDesign()
    dac = DacModel(bits=8)
    assert awc.energy_per_update_j < dac.energy_per_update_j / 5.0
