"""Tests for tools/kpi_check.py — the BENCH_*.json trajectory gate."""

import importlib.util
import json
import os
import sys

import pytest

CHECKER_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools",
    "kpi_check.py",
)

spec = importlib.util.spec_from_file_location("kpi_check", CHECKER_PATH)
kpi_check = importlib.util.module_from_spec(spec)
# dataclass processing resolves the defining module through sys.modules,
# so register before exec (plain spec_from_file_location skips this).
sys.modules["kpi_check"] = kpi_check
spec.loader.exec_module(kpi_check)


def _full(payload):
    return {"quick": False, **payload}


# --------------------------------------------------------------------------
# Plumbing
# --------------------------------------------------------------------------
def test_lookup_dotted_paths():
    payload = {"a": {"b": {"c": 3}}, "x": 1}
    assert kpi_check.lookup(payload, "a.b.c") == 3
    assert kpi_check.lookup(payload, "x") == 1
    assert kpi_check.lookup(payload, "a.missing") is None
    assert kpi_check.lookup(payload, "x.too.deep") is None


def test_load_strict_rejects_nan():
    with pytest.raises(ValueError, match="NaN"):
        kpi_check.load_strict('{"v": NaN}')
    assert kpi_check.load_strict('{"v": 1.5}') == {"v": 1.5}


def test_every_registered_kpi_names_a_known_kind():
    for name, kpis in kpi_check.KPIS.items():
        for kpi in kpis:
            assert kpi.kind in ("invariant_true", "higher"), (name, kpi)


# --------------------------------------------------------------------------
# Invariants
# --------------------------------------------------------------------------
def _identical_parallel_payload():
    """Every schema-2 parallel invariant satisfied."""
    return {
        "zoo_warmup": {"bit_identical": True},
        "capacity_grid": {"bit_identical": True},
        "pool_reuse": {"bit_identical": True},
        "shm_transport": {"bit_identical": True},
        "warm_store": {
            "bit_identical": True,
            "warm_programs_zero": True,
            "restored_bit_identical": True,
        },
    }


def test_invariant_failure_reported_in_quick_mode_too():
    fresh = {"quick": True, **_identical_parallel_payload()}
    fresh["zoo_warmup"] = {"bit_identical": False}
    failures = kpi_check.check_invariants("parallel", fresh)
    assert len(failures) == 1
    assert "zoo_warmup.bit_identical" in failures[0]


def test_warm_store_invariants_gated():
    fresh = {"quick": False, **_identical_parallel_payload()}
    assert kpi_check.check_invariants("parallel", fresh) == []
    fresh["warm_store"] = {
        "bit_identical": True,
        "warm_programs_zero": False,
        "restored_bit_identical": True,
    }
    failures = kpi_check.check_invariants("parallel", fresh)
    assert len(failures) == 1
    assert "warm_store.warm_programs_zero" in failures[0]


def test_missing_invariant_counts_as_failure():
    failures = kpi_check.check_invariants("parallel", {"quick": False})
    assert len(failures) == 7  # all schema-2 exact claims absent


# --------------------------------------------------------------------------
# Trajectory comparisons
# --------------------------------------------------------------------------
def test_regression_beyond_rel_tol_fails():
    baseline = _full({"recovery_ratio": 1.0})
    ok = kpi_check.compare_payloads(
        "degraded_serving", _full({"recovery_ratio": 0.96}), baseline
    )
    assert ok == []
    bad = kpi_check.compare_payloads(
        "degraded_serving", _full({"recovery_ratio": 0.90}), baseline
    )
    assert len(bad) == 1 and "recovery_ratio" in bad[0]


def test_abs_slack_gates_small_differences():
    baseline = _full({"slo_vs_greedy_hit_gain": 0.05})
    ok = kpi_check.compare_payloads(
        "serving_policies", _full({"slo_vs_greedy_hit_gain": 0.04}), baseline
    )
    assert ok == []
    bad = kpi_check.compare_payloads(
        "serving_policies", _full({"slo_vs_greedy_hit_gain": 0.02}), baseline
    )
    assert len(bad) == 1


def test_quick_payloads_never_compared():
    baseline = _full({"recovery_ratio": 1.0})
    fresh = {"quick": True, "recovery_ratio": 0.1}
    assert kpi_check.compare_payloads("degraded_serving", fresh, baseline) == []
    # ... and a quick *baseline* is equally non-binding.
    assert (
        kpi_check.compare_payloads(
            "degraded_serving",
            _full({"recovery_ratio": 0.1}),
            {"quick": True, "recovery_ratio": 1.0},
        )
        == []
    )


def test_min_cores_gates_parallel_speedups():
    few_cores = _full(
        {
            "cores": 1,
            "zoo_warmup": {"bit_identical": True, "speedup": 0.4},
            "capacity_grid": {"bit_identical": True, "speedup": 0.5},
        }
    )
    baseline = _full(
        {
            "cores": 8,
            "zoo_warmup": {"bit_identical": True, "speedup": 3.0},
            "capacity_grid": {"bit_identical": True, "speedup": 2.5},
        }
    )
    # 1-core fresh payload: speedups are IPC overhead, not gated.
    assert kpi_check.compare_payloads("parallel", few_cores, baseline) == []
    # 8-core fresh payload vs 8-core baseline: gated normally.
    regressed = _full(
        {
            "cores": 8,
            "zoo_warmup": {"bit_identical": True, "speedup": 1.0},
            "capacity_grid": {"bit_identical": True, "speedup": 2.4},
        }
    )
    failures = kpi_check.compare_payloads("parallel", regressed, baseline)
    assert len(failures) == 1 and "zoo_warmup.speedup" in failures[0]


def test_absent_metric_is_not_gated():
    baseline = _full({"recovery_ratio": 1.0})
    assert kpi_check.compare_payloads("degraded_serving", _full({}), baseline) == []
    assert (
        kpi_check.compare_payloads(
            "degraded_serving", _full({"recovery_ratio": 1.0}), _full({})
        )
        == []
    )


def test_chaos_invariants_gated():
    """The resilience flags are exact claims, checked in quick mode too."""
    fresh = {
        "quick": True,
        "default_bit_identical": False,
        "deterministic": True,
    }
    failures = kpi_check.check_invariants("chaos", fresh)
    assert len(failures) == 1
    assert "default_bit_identical" in failures[0]
    fresh["default_bit_identical"] = True
    assert kpi_check.check_invariants("chaos", fresh) == []


def test_controlplane_invariants_gated():
    """The control-plane flags are exact claims, checked in quick mode too."""
    fresh = {
        "quick": True,
        "default_bit_identical": True,
        "deterministic": False,
    }
    failures = kpi_check.check_invariants("controlplane", fresh)
    assert len(failures) == 1
    assert "deterministic" in failures[0]
    fresh["deterministic"] = True
    assert kpi_check.check_invariants("controlplane", fresh) == []


def test_controlplane_savings_and_hit_rate_gated():
    """Node-seconds savings and the deadline-hit rate are trajectory KPIs."""
    baseline = _full(
        {
            "autoscaled_interactive_hit_rate": 1.0,
            "node_seconds_saved_frac": 0.45,
        }
    )
    ok = kpi_check.compare_payloads(
        "controlplane",
        _full(
            {
                "autoscaled_interactive_hit_rate": 0.995,
                "node_seconds_saved_frac": 0.42,
            }
        ),
        baseline,
    )
    assert ok == []
    bad = kpi_check.compare_payloads(
        "controlplane",
        _full(
            {
                "autoscaled_interactive_hit_rate": 0.90,
                "node_seconds_saved_frac": 0.20,
            }
        ),
        baseline,
    )
    assert len(bad) == 2
    assert any("autoscaled_interactive_hit_rate" in f for f in bad)
    assert any("node_seconds_saved_frac" in f for f in bad)


# --------------------------------------------------------------------------
# Core-gated skip annotations
# --------------------------------------------------------------------------
def test_core_gated_skips_are_annotated():
    """A 1-core host's excused speedup KPIs produce explicit SKIP notes."""
    few_cores = _full(
        {
            "cores": 1,
            "zoo_warmup": {"bit_identical": True, "speedup": 0.4},
            "capacity_grid": {"bit_identical": True, "speedup": 0.5},
        }
    )
    baseline = _full(
        {
            "cores": 8,
            "zoo_warmup": {"bit_identical": True, "speedup": 3.0},
            "capacity_grid": {"bit_identical": True, "speedup": 2.5},
        }
    )
    skips = kpi_check.core_gated_skips("parallel", few_cores, baseline)
    # zoo_warmup, capacity_grid, pool_reuse and shm_transport speedups
    # are core-gated; warm_store.speedup is not (it is no parallelism
    # claim) and must never appear here.
    assert len(skips) == 4
    assert "zoo_warmup.speedup" in skips[0] and "fresh host has 1" in skips[0]
    assert not any("warm_store" in note for note in skips)
    # Capable hosts on both sides: nothing excused, nothing annotated.
    assert kpi_check.core_gated_skips("parallel", baseline, baseline) == []


def test_warm_store_speedup_gated_on_any_host():
    """The store-restore KPI carries no core gate: a 1-core container
    still fails the gate when the warm-store speedup collapses."""
    baseline = _full({"cores": 8, "warm_store": {"speedup": 40.0}})
    fresh = _full({"cores": 1, "warm_store": {"speedup": 5.0}})
    failures = kpi_check.compare_payloads("parallel", fresh, baseline)
    assert len(failures) == 1 and "warm_store.speedup" in failures[0]


def test_quick_payloads_produce_no_skip_notes():
    """Quick-mode runs compare nothing, so no core gate ever fires."""
    quick = {"quick": True, "cores": 1}
    assert kpi_check.core_gated_skips("parallel", quick, _full({})) == []


def test_controlplane_kpis_hold_on_any_host():
    """Simulated-time control-plane KPIs carry no ``min_cores`` gate, so a
    1-core CI container gates them fully and annotates no skips."""
    assert all(
        not kpi.min_cores for kpi in kpi_check.KPIS["controlplane"]
    )
    one_core = _full({"cores": 1, "node_seconds_saved_frac": 0.45})
    assert kpi_check.core_gated_skips("controlplane", one_core, one_core) == []


# --------------------------------------------------------------------------
# File-level behavior
# --------------------------------------------------------------------------
def test_unknown_bench_passes(tmp_path):
    path = tmp_path / "BENCH_novel.json"
    path.write_text(json.dumps({"bench": "novel", "quick": False}))
    assert kpi_check.check_file(str(path), "HEAD") == []


def test_malformed_json_fails(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text('{"bench": "parallel", "v": NaN}')
    failures = kpi_check.check_file(str(path), "HEAD")
    assert len(failures) == 1 and "not strict JSON" in failures[0]


def test_committed_benches_pass_the_gate():
    """The working tree must always hold its own committed trajectory."""
    assert kpi_check.main([]) == 0
