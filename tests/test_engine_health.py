"""Tests for repro.engine.health — degraded serving + online recalibration."""

import numpy as np
import pytest

from repro.engine import (
    FaultProfile,
    FrameServer,
    SnrWatchdog,
    WeightProgramCache,
)
from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.nn.models import build_lenet, build_mlp
from repro.nn.quant import UniformWeightQuantizer
from repro.sim.faults import FaultSpec, FaultyOpticalCore


@pytest.fixture
def frames():
    return np.random.default_rng(5).uniform(0.0, 1.0, (200, 1, 28, 28))


def _server(profile, num_nodes=2, seed=0):
    server = FrameServer(
        num_nodes=num_nodes, micro_batch=8, seed=seed, fault_profile=profile
    )
    server.register_model("a", build_lenet(seed=0))
    return server


UPSET_PROFILE = FaultProfile(
    name="test-upset",
    fault_spec=FaultSpec(dead_mr_rate=0.3, bpd_gain_sigma=0.15),
    fault_onset_s=0.03,
    node_stagger_s=0.015,
)


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def test_named_profiles_resolve():
    assert FaultProfile.named("none") is None
    for name in ("drift", "transient", "harsh"):
        profile = FaultProfile.named(name)
        assert profile is not None and profile.active
    with pytest.raises(ValueError, match="unknown fault profile"):
        FaultProfile.named("catastrophic")


def test_profile_validation():
    with pytest.raises(ValueError):
        FaultProfile(drift_trip_fraction=0.0)
    with pytest.raises(ValueError):
        FaultProfile(fault_onset_s=-1.0)
    with pytest.raises(ValueError):
        FaultProfile(fatal_upsets=0)
    assert not FaultProfile().active  # no upsets, no drift


def test_inactive_profile_collapses_to_no_monitoring(frames):
    server = _server(FaultProfile(name="inert"))
    assert server.fault_profile is None
    report = server.serve_frames(frames[:16], "a", offered_fps=500.0)
    assert report.health is None


# ----------------------------------------------------------------------
# Profile "none" bit-identity
# ----------------------------------------------------------------------
def test_profile_none_serving_is_bit_identical(frames):
    plain = _server(None)
    none = _server("none")
    report_plain = plain.serve_frames(frames[:48], "a", offered_fps=1000.0)
    report_none = none.serve_frames(frames[:48], "a", offered_fps=1000.0)
    assert report_none.health is None
    assert (
        report_plain.stream.total_energy_j == report_none.stream.total_energy_j
    )
    for left, right in zip(report_plain.responses, report_none.responses):
        assert left.event == right.event
        assert not right.degraded
        if left.output is None:
            assert right.output is None
        else:
            np.testing.assert_array_equal(left.output, right.output)


# ----------------------------------------------------------------------
# Mid-stream faults: deterministic served-accuracy impact
# ----------------------------------------------------------------------
def test_mid_stream_fault_changes_outputs_deterministically(frames):
    healthy = _server(None).serve_frames(frames, "a", offered_fps=1000.0)
    first = _server(UPSET_PROFILE).serve_frames(frames, "a", offered_fps=1000.0)
    second = _server(UPSET_PROFILE).serve_frames(frames, "a", offered_fps=1000.0)

    degraded = [resp.index for resp in first.responses if resp.degraded]
    assert degraded, "the upset window must cover at least one frame"
    # Degraded frames diverge from the healthy stream...
    for index in degraded:
        assert not np.array_equal(
            first.responses[index].output, healthy.responses[index].output
        )
    # ...and the whole degraded stream is reproducible bit-for-bit.
    assert [r.index for r in second.responses if r.degraded] == degraded
    for left, right in zip(first.responses, second.responses):
        if left.output is not None:
            np.testing.assert_array_equal(left.output, right.output)
    assert [e.kind for e in first.health.events] == [
        e.kind for e in second.health.events
    ]


def test_health_report_counters(frames):
    report = _server(UPSET_PROFILE).serve_frames(frames, "a", offered_fps=1000.0)
    health = report.health
    assert health.profile == "test-upset"
    assert health.upsets == 2  # one per node (staggered onsets)
    assert health.recalibrations == 2
    assert health.degraded_frames == sum(r.degraded for r in report.responses)
    assert health.healthy_frames == report.delivered - health.degraded_frames
    assert 0.0 < health.degraded_fraction < 1.0
    kinds = [e.kind for e in health.events]
    assert kinds.count("watchdog-trip") == 2
    # Trips carry the equivalent-bit diagnosis.
    trip = next(e for e in health.events if e.kind == "watchdog-trip")
    assert "equivalent bits" in trip.detail


# ----------------------------------------------------------------------
# Online recalibration: bit-identical program recovery
# ----------------------------------------------------------------------
@pytest.mark.parametrize("calibrated", [False, True])
def test_recovery_restores_bit_identical_programs(frames, calibrated):
    profile = FaultProfile(
        name="test-recovery",
        fault_spec=UPSET_PROFILE.fault_spec,
        fault_onset_s=0.03,
        node_stagger_s=0.015,
        calibrated=calibrated,
    )
    server = _server(profile)
    server.warmup(frame_shape=(1, 28, 28))
    pre_fault = {
        node.node_id: node.opc.programmed.realized.copy()
        for node in server.nodes
    }
    invalidations0 = server.cache.stats.invalidations

    report = server.serve_frames(frames, "a", offered_fps=1000.0)
    assert report.health.recalibrations == 2
    assert server.cache.stats.invalidations > invalidations0

    # The post-recovery reprogram (a cache miss re-running the mapping
    # chain) must land exactly on the pre-fault realized weights.
    for node in server.nodes:
        node.activate(server._models["a"])
        np.testing.assert_array_equal(
            node.opc.programmed.realized, pre_fault[node.node_id]
        )


def test_recalibrating_node_is_routed_around(frames):
    """While one node recalibrates, the survivor serves the stream."""
    profile = FaultProfile(
        name="test-routing",
        fault_spec=FaultSpec(dead_mr_rate=0.5),
        fault_onset_s=0.05,
        node_stagger_s=10.0,  # only node 0 faults within the stream
        recalibration_latency_s=0.02,
    )
    server = _server(profile)
    report = server.serve_frames(frames, "a", offered_fps=1000.0)
    health = report.health
    assert health.recalibrations == 1
    trip = next(e for e in health.events if e.kind.endswith("-trip"))
    done = next(e for e in health.events if e.kind == "recalibrated")
    # Every frame arriving inside the recalibration window lands on node 1.
    in_window = [
        resp
        for resp in report.responses
        if trip.time_s <= resp.event.arrival_s < done.time_s
        and not resp.dropped
    ]
    assert in_window
    assert all(resp.node_id == 1 for resp in in_window)


def test_fatal_upset_kills_node_and_survivor_carries_on(frames):
    profile = FaultProfile(
        name="test-fatal",
        fault_spec=FaultSpec(dead_mr_rate=0.5),
        fault_onset_s=0.05,
        node_stagger_s=10.0,
        fatal_upsets=1,
    )
    server = _server(profile)
    report = server.serve_frames(frames, "a", offered_fps=1000.0)
    health = report.health
    assert health.dead_nodes == [0]
    assert any(e.kind == "died" for e in health.events)
    after_death = [
        resp
        for resp in report.responses
        if resp.event.arrival_s >= 0.05 and not resp.dropped
    ]
    assert after_death and all(resp.node_id == 1 for resp in after_death)


def test_repeated_upsets_keep_tripping_the_watchdog():
    """A recalibrated node must stay monitorable: upset #2 also recovers.

    Regression: after the first recalibration wiped ``programmed_model``,
    the watchdog used to go blind for the rest of the stream and later
    upsets served degraded frames forever.
    """
    profile = FaultProfile(
        name="test-repeat",
        fault_spec=FaultSpec(dead_mr_rate=0.5),
        fault_onset_s=0.03,
        fault_every_s=0.1,
    )
    server = _server(profile, num_nodes=1)
    frames = np.random.default_rng(5).uniform(0.0, 1.0, (300, 1, 28, 28))
    report = server.serve_frames(frames, "a", offered_fps=1000.0)
    health = report.health
    assert health.upsets >= 2
    assert health.recalibrations >= 2
    # Every upset is eventually answered: the stream never ends degraded.
    assert not report.responses[-1].degraded
    assert health.degraded_frames < report.delivered / 2


def test_watchdog_sees_dead_vcsel_faults():
    """Dead input wavelengths must register in the monitored weight error."""
    quantizer = UniformWeightQuantizer(4)
    weights = np.random.default_rng(2).normal(size=(8, 3, 3, 3)) * 0.1
    opc = OpticalProcessingCore(seed=0, enable_read_noise=False)
    opc.program(quantizer.quantize(weights), quantizer.scale(weights))
    faulty = FaultyOpticalCore.from_programmed(
        opc, FaultSpec(dead_vcsel_rate=1.0), seed=3
    )
    assert faulty.weight_error_relative > 0.0
    assert SnrWatchdog(OISAConfig()).trips(faulty.weight_error_relative)


def test_fatal_upsets_count_as_upsets(frames):
    profile = FaultProfile(
        name="test-fatal-count",
        fault_spec=FaultSpec(dead_mr_rate=0.5),
        fault_onset_s=0.05,
        node_stagger_s=10.0,
        fatal_upsets=1,
    )
    report = _server(profile).serve_frames(frames, "a", offered_fps=1000.0)
    assert report.health.upsets == 1  # the fatal one


def test_drift_profile_forces_thermal_retrims(frames):
    server = _server(FaultProfile(name="test-drift", drift_k_per_s=8.0))
    report = server.serve_frames(frames, "a", offered_fps=1000.0)
    health = report.health
    assert any(e.kind == "drift-trip" for e in health.events)
    assert health.recalibrations >= 1
    assert health.peak_drift_k > 0.0
    # Drift degrades availability (re-trim downtime), never output bits.
    assert health.degraded_frames == 0


def test_dense_models_serve_under_faults():
    server = FrameServer(
        num_nodes=1, micro_batch=8, seed=0, fault_profile=UPSET_PROFILE
    )
    server.register_model(
        "mlp", build_mlp(in_features=64, hidden=(16,), num_classes=4, seed=0)
    )
    frames = np.random.default_rng(8).uniform(0, 1, (120, 1, 8, 8))
    report = server.serve_frames(frames, "mlp", offered_fps=1000.0)
    assert report.health.upsets >= 1
    degraded = [r for r in report.responses if r.degraded]
    assert degraded and all(r.output.shape == (4,) for r in degraded)


# ----------------------------------------------------------------------
# Monitor under queueing policies + the reference-path pin
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["edf", "slo"])
def test_monitor_runs_under_queueing_policies(policy):
    """Health monitoring is policy-agnostic: the edf/slo queueing paths
    see the same deterministic fault cycle as greedy."""
    from repro.engine.workloads import build_scenario

    def run():
        scenario = build_scenario(
            "poisson", frames=200, offered_fps=1000.0, seed=0
        )
        server = FrameServer(
            num_nodes=2,
            micro_batch=8,
            seed=0,
            policy=policy,
            fault_profile=UPSET_PROFILE,
        )
        for key, model in scenario.models.items():
            server.register_model(key, model)
        server.warmup()
        return server.serve_scenario(scenario)

    first = run()
    health = first.health
    assert health is not None
    assert health.upsets >= 1 and health.recalibrations >= 1
    second = run()
    assert [
        (e.time_s, e.kind, e.node_id) for e in health.events
    ] == [(e.time_s, e.kind, e.node_id) for e in second.health.events]
    for left, right in zip(first.responses, second.responses):
        assert left.event == right.event
        if left.output is not None:
            np.testing.assert_array_equal(left.output, right.output)


def test_fault_profile_forces_reference_compute_path(frames):
    """A monitored server routes through the per-chunk reference loop:
    the (default) batched mode and explicit reference mode must be
    bit-identical under a fault profile."""
    batched = _server(UPSET_PROFILE)
    assert batched.compute_mode == "batched"
    reference = FrameServer(
        num_nodes=2,
        micro_batch=8,
        seed=0,
        fault_profile=UPSET_PROFILE,
        compute_mode="reference",
    )
    reference.register_model("a", build_lenet(seed=0))
    left = batched.serve_frames(frames, "a", offered_fps=1000.0)
    right = reference.serve_frames(frames, "a", offered_fps=1000.0)
    assert left.health is not None and right.health is not None
    assert left.stream.total_energy_j == right.stream.total_energy_j
    for a, b in zip(left.responses, right.responses):
        assert a.event == b.event
        assert a.degraded == b.degraded
        if a.output is not None:
            np.testing.assert_array_equal(a.output, b.output)


# ----------------------------------------------------------------------
# SnrWatchdog
# ----------------------------------------------------------------------
def test_watchdog_bit_arithmetic():
    watchdog = SnrWatchdog(OISAConfig())
    assert watchdog.required_bits == 4.0
    assert watchdog.optical_bits > 4.0  # the paper's §III headroom claim
    # Zero error resolves the full optical ENOB; a half-LSB-at-4-bit error
    # (2^-5 of full scale) sits exactly at 4.0 equivalent bits.
    assert watchdog.equivalent_bits(0.0) == watchdog.optical_bits
    assert watchdog.equivalent_bits(2.0**-5) == pytest.approx(4.0)
    assert not watchdog.trips(2.0**-5)
    assert watchdog.trips(2.0**-4)


def test_watchdog_margin_raises_the_bar():
    watchdog = SnrWatchdog(OISAConfig(), margin_bits=1.0)
    assert watchdog.trips(2.0**-5)  # fine at 4.0 bits, trips at 5.0


# ----------------------------------------------------------------------
# Cache invalidation
# ----------------------------------------------------------------------
def test_cache_invalidate_die_scopes_to_one_seed():
    cache = WeightProgramCache()
    quantizer = UniformWeightQuantizer(4)
    weights = np.random.default_rng(0).normal(size=(8, 1, 3, 3)) * 0.1
    quantized, scale = quantizer.quantize(weights), quantizer.scale(weights)
    die_a = OpticalProcessingCore(seed=1)
    die_b = OpticalProcessingCore(seed=2)
    cache.get_or_program(die_a, quantized, scale)
    cache.get_or_program(die_b, quantized, scale)

    assert cache.invalidate_die(1) == 1
    assert len(cache) == 1
    assert cache.stats.invalidations == 1
    _, hit_b = cache.get_or_program(die_b, quantized, scale)
    assert hit_b  # the other die's program survived
    _, hit_a = cache.get_or_program(die_a, quantized, scale)
    assert not hit_a  # the invalidated die reprograms
    assert cache.invalidate_die(99) == 0


def test_faulty_core_from_programmed_matches_program_path():
    """Both constructions freeze identical patterns for the same seed."""
    quantizer = UniformWeightQuantizer(4)
    weights = np.random.default_rng(2).normal(size=(8, 3, 3, 3)) * 0.1
    quantized, scale = quantizer.quantize(weights), quantizer.scale(weights)
    spec = FaultSpec(dead_mr_rate=0.2, bpd_gain_sigma=0.1)

    via_program = FaultyOpticalCore(
        OpticalProcessingCore(seed=0, enable_read_noise=False), spec, seed=3
    )
    via_program.program(quantized, scale)

    pre_programmed = OpticalProcessingCore(seed=0, enable_read_noise=False)
    pre_programmed.program(quantized, scale)
    wrapped = FaultyOpticalCore.from_programmed(pre_programmed, spec, seed=3)

    np.testing.assert_array_equal(
        via_program._weight_mask, wrapped._weight_mask
    )
    x = np.random.default_rng(4).choice([0.0, 0.5, 1.0], size=(2, 3, 10, 10))
    np.testing.assert_array_equal(
        via_program.convolve(x, padding=1), wrapped.convolve(x, padding=1)
    )
    assert wrapped.weight_error_relative > 0.0
