"""Tests for repro.core.opc — the photonic MAC non-ideality chain."""

import numpy as np
import pytest

from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.nn.functional import conv2d_forward
from repro.nn.quant import UniformWeightQuantizer


def _quantized_weights(shape=(4, 3, 3, 3), bits=4, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=shape) * 0.1
    quantizer = UniformWeightQuantizer(bits)
    return quantizer.quantize(weights), quantizer.scale(weights)


def test_program_returns_record():
    opc = OpticalProcessingCore(seed=0)
    quantized, scale = _quantized_weights()
    programmed = opc.program(quantized, scale)
    assert programmed.realized.shape == quantized.shape
    assert programmed.mapping_iterations == 100
    assert programmed.tuning.energy_j > 0.0


def test_realized_weights_close_but_not_exact():
    opc = OpticalProcessingCore(seed=0)
    quantized, scale = _quantized_weights()
    programmed = opc.program(quantized, scale)
    assert 0.0 < programmed.weight_error_relative < 0.08


def test_ideal_opc_is_exact():
    opc = OpticalProcessingCore(seed=0, enable_crosstalk=False, enable_read_noise=False)
    config = OISAConfig()
    from dataclasses import replace

    from repro.circuits.awc import AwcDesign

    ideal_awc = AwcDesign(
        mismatch_sigma=0.0, offset_sigma_a=0.0, compression_alpha=0.0
    )
    opc = OpticalProcessingCore(
        replace(config, awc_design=ideal_awc),
        seed=0,
        enable_crosstalk=False,
        enable_read_noise=False,
    )
    quantized, scale = _quantized_weights()
    programmed = opc.program(quantized, scale)
    np.testing.assert_allclose(programmed.realized, quantized, atol=1e-12)


def test_convolve_matches_reference_with_realized_weights():
    opc = OpticalProcessingCore(seed=1, enable_read_noise=False)
    quantized, scale = _quantized_weights()
    programmed = opc.program(quantized, scale)
    x = np.random.default_rng(2).choice([0.0, 0.5, 1.0], size=(2, 3, 8, 8))
    out = opc.convolve(x, stride=1, padding=1)
    expected, _ = conv2d_forward(x, programmed.realized, None, 1, 1)
    np.testing.assert_allclose(out, expected, atol=1e-12)


def test_read_noise_perturbs_outputs():
    quantized, scale = _quantized_weights()
    x = np.random.default_rng(3).choice([0.0, 0.5, 1.0], size=(1, 3, 8, 8))
    noiseless = OpticalProcessingCore(seed=4, enable_read_noise=False)
    noiseless.program(quantized, scale)
    clean = noiseless.convolve(x, padding=1)
    noisy_core = OpticalProcessingCore(seed=4, enable_read_noise=True)
    noisy_core.program(quantized, scale)
    noisy = noisy_core.convolve(x, padding=1)
    assert not np.allclose(clean, noisy)
    # But the noise is small relative to the signal scale.
    assert np.abs(noisy - clean).max() < 0.3 * np.abs(clean).max() + 0.5


def test_convolve_requires_programming():
    opc = OpticalProcessingCore(seed=0)
    with pytest.raises(RuntimeError):
        opc.convolve(np.zeros((1, 3, 8, 8)))


def test_dense_dot():
    opc = OpticalProcessingCore(seed=5, enable_read_noise=False)
    rng = np.random.default_rng(6)
    weights = rng.normal(size=(10, 50)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    quantized = quantizer.quantize(weights)
    programmed = opc.program(quantized, quantizer.scale(weights))
    x = rng.choice([0.0, 0.5, 1.0], size=(4, 50))
    out = opc.dot(x)
    np.testing.assert_allclose(out, x @ programmed.realized.T, atol=1e-12)


def test_conv_dot_shape_mismatch():
    opc = OpticalProcessingCore(seed=0)
    quantized, scale = _quantized_weights()
    opc.program(quantized, scale)
    with pytest.raises(ValueError):
        opc.dot(np.zeros((2, 27)))


def test_crosstalk_systematic_not_random():
    quantized, scale = _quantized_weights()
    a = OpticalProcessingCore(seed=7, enable_read_noise=False)
    b = OpticalProcessingCore(seed=7, enable_read_noise=False)
    ra = a.program(quantized, scale).realized
    rb = b.program(quantized, scale).realized
    np.testing.assert_array_equal(ra, rb)


def test_weight_transform_hook_matches_program():
    opc = OpticalProcessingCore(seed=8, enable_read_noise=False)
    quantized, scale = _quantized_weights()
    transform = opc.weight_transform(scale_hint=scale)
    realized_hook = transform(quantized)
    realized_program = opc.program(quantized, scale).realized
    np.testing.assert_allclose(realized_hook, realized_program)


def test_scale_validation():
    opc = OpticalProcessingCore(seed=0)
    with pytest.raises(ValueError):
        opc.program(np.zeros((1, 1, 3, 3)), 0.0)
