"""Tests for WeightProgramCache byte-budget mode and preload semantics."""

import numpy as np
import pytest

from repro.core.opc import OpticalProcessingCore
from repro.engine import WeightProgramCache
from repro.nn.quant import UniformWeightQuantizer


def _kernel_set(seed):
    """A distinct quantized kernel set per seed (same shape/size)."""
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(8, 1, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    return quantizer.quantize(weights), quantizer.scale(weights)


@pytest.fixture
def opc():
    return OpticalProcessingCore(seed=1)


def _program(cache, opc, seed):
    quantized, scale = _kernel_set(seed)
    programmed, hit = cache.get_or_program(opc, quantized, scale)
    return programmed, hit


def _entry_bytes(opc):
    """Resident bytes of one program for the fixture kernel shape."""
    cache = WeightProgramCache()
    programmed, _ = _program(cache, opc, seed=0)
    return WeightProgramCache.entry_nbytes(programmed)


# --------------------------------------------------------------------------
# Accounting
# --------------------------------------------------------------------------
def test_entry_nbytes_counts_both_tensors(opc):
    cache = WeightProgramCache()
    programmed, _ = _program(cache, opc, seed=0)
    expected = programmed.ideal.nbytes + programmed.realized.nbytes
    assert WeightProgramCache.entry_nbytes(programmed) == expected
    assert cache.stats.bytes_cached == expected
    assert cache.stats.bytes_evicted == 0


def test_bytes_cached_tracks_inserts_and_clear(opc):
    cache = WeightProgramCache()
    per_entry = _entry_bytes(opc)
    for seed in range(3):
        _program(cache, opc, seed)
    assert cache.stats.bytes_cached == 3 * per_entry
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.bytes_cached == 0
    # Cumulative counters survive clear() (they describe history).
    assert cache.stats.misses == 3


def test_invalidate_die_releases_bytes(opc):
    cache = WeightProgramCache()
    per_entry = _entry_bytes(opc)
    other_die = OpticalProcessingCore(seed=2)
    _program(cache, opc, 0)
    _program(cache, other_die, 0)
    assert cache.stats.bytes_cached == 2 * per_entry
    dropped = cache.invalidate_die(opc.seed)
    assert dropped == 1
    assert cache.stats.bytes_cached == per_entry
    assert cache.stats.bytes_evicted == 0  # invalidation is not eviction


# --------------------------------------------------------------------------
# Budget-driven eviction
# --------------------------------------------------------------------------
def test_budget_evicts_lru_first(opc):
    per_entry = _entry_bytes(opc)
    cache = WeightProgramCache(memory_budget_bytes=2 * per_entry)
    _program(cache, opc, 0)
    _program(cache, opc, 1)
    assert cache.stats.evictions == 0

    # Touch set 0 so set 1 becomes the LRU entry, then overflow.
    _, hit = _program(cache, opc, 0)
    assert hit
    _program(cache, opc, 2)

    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.stats.bytes_evicted == per_entry
    assert cache.stats.bytes_cached == 2 * per_entry
    # Set 1 was evicted (LRU); sets 0 and 2 are resident.
    q0, s0 = _kernel_set(0)
    q1, s1 = _kernel_set(1)
    q2, s2 = _kernel_set(2)
    assert cache.has_program(opc, q0, s0)
    assert not cache.has_program(opc, q1, s1)
    assert cache.has_program(opc, q2, s2)


def test_budget_and_capacity_compose(opc):
    """The tighter of the two bounds wins."""
    per_entry = _entry_bytes(opc)
    cache = WeightProgramCache(
        capacity=1, memory_budget_bytes=10 * per_entry
    )
    _program(cache, opc, 0)
    _program(cache, opc, 1)
    assert len(cache) == 1
    assert cache.stats.evictions == 1
    assert cache.stats.bytes_cached == per_entry


def test_sole_oversized_entry_is_kept(opc):
    """A single entry above the whole budget stays resident."""
    per_entry = _entry_bytes(opc)
    cache = WeightProgramCache(memory_budget_bytes=per_entry // 2)
    programmed, _ = _program(cache, opc, 0)
    assert len(cache) == 1
    assert cache.stats.evictions == 0
    assert cache.stats.bytes_cached == per_entry

    # ... and is first in line once anything newer lands.
    _program(cache, opc, 1)
    assert len(cache) == 1
    assert cache.stats.evictions == 1
    q0, s0 = _kernel_set(0)
    assert not cache.has_program(opc, q0, s0)


def test_invalid_budget_rejected():
    with pytest.raises(ValueError, match="memory_budget_bytes"):
        WeightProgramCache(memory_budget_bytes=0)
    with pytest.raises(ValueError, match="memory_budget_bytes"):
        WeightProgramCache(memory_budget_bytes=-64)


# --------------------------------------------------------------------------
# preload / has_program (the parallel-warmup seeding path)
# --------------------------------------------------------------------------
def test_preload_seeds_without_installing(opc):
    quantized, scale = _kernel_set(0)
    worker_opc = OpticalProcessingCore(seed=opc.seed)
    programmed = worker_opc.program(quantized, scale)

    cache = WeightProgramCache()
    assert not cache.has_program(opc, quantized, scale)
    cache.preload(opc, quantized, scale, programmed)
    assert cache.has_program(opc, quantized, scale)
    assert cache.stats.misses == 1  # the mapping chain ran (elsewhere)
    assert opc._programmed is None  # preload does not touch the core

    # The subsequent in-process activation is a hit that installs.
    cached, hit = cache.get_or_program(opc, quantized, scale)
    assert hit
    assert cached is programmed
    assert opc.programmed is programmed


def test_preload_is_idempotent_on_resident_keys(opc):
    quantized, scale = _kernel_set(0)
    cache = WeightProgramCache()
    first, _ = cache.get_or_program(opc, quantized, scale)
    misses = cache.stats.misses
    cache.preload(opc, quantized, scale, opc.program(quantized, scale))
    assert cache.stats.misses == misses  # resident key: no-op, no miss
    cached, hit = cache.get_or_program(opc, quantized, scale)
    assert hit and cached is first


def test_preload_respects_budget(opc):
    per_entry = _entry_bytes(opc)
    cache = WeightProgramCache(memory_budget_bytes=2 * per_entry)
    for seed in range(3):
        quantized, scale = _kernel_set(seed)
        cache.preload(opc, quantized, scale, opc.program(quantized, scale))
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.stats.bytes_cached == 2 * per_entry


def test_has_program_leaves_stats_and_lru_alone(opc):
    per_entry = _entry_bytes(opc)
    cache = WeightProgramCache(memory_budget_bytes=2 * per_entry)
    _program(cache, opc, 0)
    _program(cache, opc, 1)
    stats_before = (cache.stats.hits, cache.stats.misses)

    q0, s0 = _kernel_set(0)
    assert cache.has_program(opc, q0, s0)  # must NOT refresh set 0's LRU slot
    assert (cache.stats.hits, cache.stats.misses) == stats_before

    _program(cache, opc, 2)  # overflow: set 0 is still the LRU entry
    assert not cache.has_program(opc, q0, s0)
