"""Tests for repro.memarch — CACTI/NVSIM-style estimators."""

import pytest

from repro.memarch import EdramModel, NvmModel, SramModel


def test_sram_energy_scales_with_capacity():
    small = SramModel(capacity_bytes=4096)
    large = SramModel(capacity_bytes=16384)
    assert large.read_energy_j() == pytest.approx(small.read_energy_j() * 2.0)


def test_sram_write_more_expensive_than_read():
    sram = SramModel(capacity_bytes=8192)
    assert sram.write_energy_j() > sram.read_energy_j()


def test_sram_node_scaling():
    at45 = SramModel(capacity_bytes=4096, technology_nm=45)
    at65 = SramModel(capacity_bytes=4096, technology_nm=65)
    assert at65.read_energy_j() > at45.read_energy_j()
    assert at65.area_mm2() > at45.area_mm2()


def test_sram_leakage_linear_in_capacity():
    a = SramModel(capacity_bytes=4096).leakage_power_w()
    b = SramModel(capacity_bytes=8192).leakage_power_w()
    assert b == pytest.approx(2 * a)


def test_edram_denser_but_slower_than_sram():
    edram = EdramModel(capacity_bytes=2 * 1024 * 1024)
    sram_same_size = SramModel(capacity_bytes=2 * 1024 * 1024)
    assert edram.area_mm2() < sram_same_size.area_mm2()
    # A tile-sized SRAM buffer is still faster than the big eDRAM macro.
    sram_tile = SramModel(capacity_bytes=64 * 1024)
    assert edram.access_time_s() > sram_tile.access_time_s()


def test_edram_refresh_power():
    edram = EdramModel(capacity_bytes=2 * 1024 * 1024)
    assert edram.refresh_power_w() > 0.0
    double = EdramModel(capacity_bytes=4 * 1024 * 1024)
    assert double.refresh_power_w() == pytest.approx(2 * edram.refresh_power_w())


def test_nvm_write_dominates_read():
    # The paper's critique of PISA/AppCiP NVM banks.
    nvm = NvmModel(capacity_bytes=4096)
    assert nvm.write_energy_j() > 10 * nvm.read_energy_j()
    assert nvm.write_time_s() > nvm.read_time_s()


def test_nvm_leaks_less_than_sram():
    nvm = NvmModel(capacity_bytes=4096)
    sram = SramModel(capacity_bytes=4096)
    assert nvm.leakage_power_w() < sram.leakage_power_w()


def test_nvm_lifetime_writes():
    nvm = NvmModel(capacity_bytes=4096, endurance_cycles=1e8)
    words = 4096 * 8 / nvm.word_bits
    assert nvm.lifetime_writes() == pytest.approx(words * 1e8)


def test_validation():
    with pytest.raises(ValueError):
        SramModel(capacity_bytes=0)
    with pytest.raises(ValueError):
        NvmModel(capacity_bytes=-1)
