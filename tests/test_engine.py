"""Tests for repro.engine — weight-program cache and FrameServer."""

import numpy as np
import pytest

from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.engine import FrameRequest, FrameServer, WeightProgramCache
from repro.nn.models import build_lenet, build_mlp
from repro.nn.quant import UniformWeightQuantizer


@pytest.fixture
def kernel_set():
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(8, 1, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    return quantizer.quantize(weights), quantizer.scale(weights)


# --------------------------------------------------------------------------
# WeightProgramCache
# --------------------------------------------------------------------------
def test_cache_miss_then_hit(kernel_set):
    quantized, scale = kernel_set
    cache = WeightProgramCache()
    opc = OpticalProcessingCore(seed=1)

    first, hit1 = cache.get_or_program(opc, quantized, scale)
    again, hit2 = cache.get_or_program(opc, quantized, scale)
    assert (hit1, hit2) == (False, True)
    assert again is first
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5
    # The hit installed the cached record on the OPC.
    assert opc.programmed is first


def test_cache_hit_skips_remapping_work(kernel_set):
    """A hit restores the exact realized tensor without recomputation."""
    quantized, scale = kernel_set
    cache = WeightProgramCache()
    opc = OpticalProcessingCore(seed=1)
    programmed, _ = cache.get_or_program(opc, quantized, scale)

    other = np.zeros_like(quantized)
    opc.program(other, 1.0)  # kernel swap to a different set
    restored, hit = cache.get_or_program(opc, quantized, scale)
    assert hit
    np.testing.assert_array_equal(restored.realized, programmed.realized)
    np.testing.assert_array_equal(opc.programmed.realized, programmed.realized)


def test_cache_is_seed_sensitive(kernel_set):
    """Two dies (different AWC mismatch) must never share a program."""
    quantized, scale = kernel_set
    cache = WeightProgramCache()
    die_a = OpticalProcessingCore(seed=1)
    die_b = OpticalProcessingCore(seed=2)

    program_a, hit_a = cache.get_or_program(die_a, quantized, scale)
    program_b, hit_b = cache.get_or_program(die_b, quantized, scale)
    assert not hit_a and not hit_b  # same kernels, different dies -> two entries
    assert len(cache) == 2
    assert not np.array_equal(program_a.realized, program_b.realized)


def test_cache_key_varies_with_bits_and_scale(kernel_set):
    quantized, scale = kernel_set
    opc = OpticalProcessingCore(seed=1)
    key = WeightProgramCache.key_for(opc, quantized, scale)
    assert WeightProgramCache.key_for(opc, quantized, scale * 2) != key

    coarse = OpticalProcessingCore(
        opc.config.with_weight_bits(2), seed=1
    )
    assert WeightProgramCache.key_for(coarse, quantized, scale) != key


def test_cache_key_covers_whole_config(kernel_set):
    """Any architecture/device parameter change must separate programs."""
    from dataclasses import replace

    from repro.core.config import OISAConfig

    quantized, scale = kernel_set
    reference = OpticalProcessingCore(OISAConfig(), seed=1)
    key = WeightProgramCache.key_for(reference, quantized, scale)
    retuned = OpticalProcessingCore(
        replace(OISAConfig(), num_banks=40), seed=1
    )
    assert WeightProgramCache.key_for(retuned, quantized, scale) != key
    no_crosstalk = OpticalProcessingCore(
        OISAConfig(), seed=1, enable_crosstalk=False
    )
    assert WeightProgramCache.key_for(no_crosstalk, quantized, scale) != key


def test_cache_lru_eviction():
    cache = WeightProgramCache(capacity=2)
    opc = OpticalProcessingCore(seed=1)
    quantizer = UniformWeightQuantizer(4)
    sets = []
    for seed in range(3):
        weights = np.random.default_rng(seed).normal(size=(8, 1, 3, 3)) * 0.1
        sets.append((quantizer.quantize(weights), quantizer.scale(weights)))
    for quantized, scale in sets:
        cache.get_or_program(opc, quantized, scale)
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    # The first (evicted) set misses again.
    _, hit = cache.get_or_program(opc, *sets[0][:2])
    assert not hit


def test_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        WeightProgramCache(capacity=0)


def test_pipeline_uses_shared_cache():
    """Two models multiplexed over one OPC swap via cache, not remapping."""
    cache = WeightProgramCache()
    opc = OpticalProcessingCore(seed=0, enable_read_noise=False)
    pipe_a = HardwareFirstLayerPipeline(build_lenet(seed=0), opc, program_cache=cache)
    pipe_b = HardwareFirstLayerPipeline(build_lenet(seed=1), opc, program_cache=cache)
    assert cache.stats.misses == 2

    frame = np.random.default_rng(3).uniform(0, 1, (1, 1, 28, 28))
    pipe_a.activate()
    out_a = pipe_a.forward(frame)
    pipe_b.activate()
    pipe_b.forward(frame)
    pipe_a.activate()
    out_a_again = pipe_a.forward(frame)
    assert cache.stats.misses == 2  # swaps were all hits
    assert cache.stats.hits >= 3
    np.testing.assert_allclose(out_a, out_a_again)


# --------------------------------------------------------------------------
# FrameServer
# --------------------------------------------------------------------------
@pytest.fixture
def frames():
    return np.random.default_rng(5).uniform(0.0, 1.0, (32, 1, 28, 28))


@pytest.fixture
def server():
    server = FrameServer(num_nodes=1, micro_batch=8, seed=0)
    server.register_model("a", build_lenet(seed=0))
    server.register_model("b", build_lenet(seed=1))
    return server


def test_serve_delivers_all_at_budget(server, frames):
    report = server.serve_frames(frames, "a", offered_fps=1000.0)
    assert report.stream.frames == 32
    assert report.stream.dropped == 0
    assert report.delivered == 32
    assert report.wall_clock_fps > 0.0
    assert all(resp.output is not None for resp in report.responses)
    assert report.responses[0].output.shape == (10,)


def test_serve_drop_statistics_under_oversubscription(server, frames):
    report = server.serve_frames(frames, "a", offered_fps=5000.0)
    assert report.stream.dropped > 0
    assert 0.0 < report.stream.drop_rate < 1.0
    dropped = [resp for resp in report.responses if resp.dropped]
    assert dropped and all(resp.output is None for resp in dropped)
    assert all(resp.node_id == -1 for resp in dropped)


def test_kernel_swaps_are_remap_events_and_cache_hits(server, frames):
    requests = [
        FrameRequest(frames[i], "a" if (i // 8) % 2 == 0 else "b")
        for i in range(32)
    ]
    first = server.serve(requests, offered_fps=500.0)
    # Two fresh kernel sets -> two misses; later swap-backs hit.
    assert first.cache_misses == 2
    remaps = sum(event.remapped for event in first.stream.events)
    assert remaps == 4  # initial load of "a" plus the three run boundaries
    steady = server.serve(requests, offered_fps=500.0)
    assert steady.cache_misses == 0
    assert steady.cache_hits > 0


def test_remapped_frames_cost_more_simulated_energy(server, frames):
    steady = server.serve_frames(frames, "a", offered_fps=500.0)
    alternating = server.serve(
        [
            FrameRequest(frames[i], "a" if i % 2 == 0 else "b")
            for i in range(32)
        ],
        offered_fps=500.0,
    )
    assert alternating.stream.total_energy_j > steady.stream.total_energy_j


def test_multi_node_spreads_load():
    server = FrameServer(num_nodes=2, micro_batch=8, seed=0)
    server.register_model("a", build_lenet(seed=0))
    server.register_model("b", build_lenet(seed=1))
    frames = np.random.default_rng(6).uniform(0, 1, (32, 1, 28, 28))
    requests = [
        FrameRequest(frames[i], "a" if i < 16 else "b") for i in range(32)
    ]
    report = server.serve(requests, offered_fps=1000.0)
    assert report.stream.dropped == 0
    assert sorted(report.node_frames.values()) == [16, 16]


def test_two_nodes_double_drop_free_capacity():
    frames = np.random.default_rng(6).uniform(0, 1, (40, 1, 28, 28))
    single = FrameServer(num_nodes=1, micro_batch=8, seed=0)
    double = FrameServer(num_nodes=2, micro_batch=8, seed=0)
    for server in (single, double):
        server.register_model("a", build_lenet(seed=0))
    at_2x = lambda server: server.serve_frames(frames, "a", offered_fps=1990.0)
    assert at_2x(single).stream.dropped > 0
    assert at_2x(double).stream.dropped == 0


def test_unknown_model_key_rejected(server, frames):
    with pytest.raises(ValueError):
        server.serve([FrameRequest(frames[0], "nope")])


def test_duplicate_model_key_rejected(server):
    with pytest.raises(ValueError):
        server.register_model("a", build_lenet(seed=9))


def test_fleet_payload_and_radio_accounting(server, frames):
    report = server.serve_frames(frames, "a", offered_fps=1000.0)
    assert report.payload_bytes > 0
    assert report.radio_energy_j > 0.0
    # Payload scales with delivered frames.
    half = server.serve_frames(frames[:16], "a", offered_fps=1000.0)
    assert report.payload_bytes == 2 * half.payload_bytes


def test_explicit_arrival_times_respected(server, frames):
    requests = [
        FrameRequest(frames[i], "a", arrival_s=i * 0.01) for i in range(4)
    ]
    report = server.serve(requests)
    arrivals = [event.arrival_s for event in report.stream.events]
    assert arrivals == [0.0, 0.01, 0.02, 0.03]
    assert report.stream.dropped == 0


def test_out_of_order_arrivals_scheduled_by_time(server, frames):
    """Explicit timestamps may interleave; admission sorts by arrival."""
    requests = [
        FrameRequest(frames[0], "a", arrival_s=0.005),
        FrameRequest(frames[1], "a", arrival_s=0.001),
    ]
    report = server.serve(requests)
    assert report.stream.dropped == 0
    assert [resp.index for resp in report.responses] == [0, 1]


def test_interleaved_nodes_do_not_fragment_batches(monkeypatch):
    """Load spreading across nodes must keep per-node runs intact.

    In the default batched mode each node's whole 16-frame run computes
    in one ``forward_batched`` call; the reference loop chunks the same
    runs at the micro-batch, never fragmenting on node interleave.
    """
    frames = np.random.default_rng(6).uniform(0, 1, (32, 1, 28, 28))

    run_sizes = []
    original_batched = HardwareFirstLayerPipeline.forward_batched

    def spy_batched(self, x, batch_size=256, core=None, ternary=None):
        run_sizes.append(ternary.shape[0] if ternary is not None else x.shape[0])
        return original_batched(
            self, x, batch_size=batch_size, core=core, ternary=ternary
        )

    monkeypatch.setattr(
        HardwareFirstLayerPipeline, "forward_batched", spy_batched
    )
    server = FrameServer(num_nodes=2, micro_batch=8, seed=0)
    server.register_model("a", build_lenet(seed=0))
    # ~2x one node's rate: admitted frames alternate between the two dies.
    report = server.serve_frames(frames, "a", offered_fps=1990.0)
    assert report.stream.dropped == 0
    assert set(report.node_frames.values()) == {16}
    assert run_sizes == [16, 16]  # one whole-run call per node

    batch_sizes = []
    original = HardwareFirstLayerPipeline.forward

    def spy(self, x, batch_size=256):
        batch_sizes.append(x.shape[0])
        return original(self, x, batch_size=batch_size)

    monkeypatch.setattr(HardwareFirstLayerPipeline, "forward", spy)
    reference = FrameServer(
        num_nodes=2, micro_batch=8, seed=0, compute_mode="reference"
    )
    reference.register_model("a", build_lenet(seed=0))
    report = reference.serve_frames(frames, "a", offered_fps=1990.0)
    assert report.stream.dropped == 0
    assert batch_sizes == [8, 8, 8, 8]


def test_wrong_frame_shape_rejected_clearly(server, frames):
    with pytest.raises(ValueError, match="1-channel frames"):
        server.serve([FrameRequest(np.zeros((3, 28, 28)), "a")])
    with pytest.raises(ValueError, match=r"\(C, H, W\)"):
        server.serve([FrameRequest(np.zeros((28, 28)), "a")])


def test_dense_model_serving():
    """The MLP (VOM-split) mode serves through the same engine."""
    server = FrameServer(num_nodes=1, micro_batch=8, seed=0)
    server.register_model(
        "mlp", build_mlp(in_features=64, hidden=(16,), num_classes=4, seed=0)
    )
    frames = np.random.default_rng(8).uniform(0, 1, (16, 1, 8, 8))
    report = server.serve_frames(frames, "mlp", offered_fps=500.0)
    assert report.delivered == 16
    assert report.responses[0].output.shape == (4,)
    assert report.payload_bytes > 0


def test_server_validation():
    with pytest.raises(ValueError):
        FrameServer(num_nodes=0)
    with pytest.raises(ValueError):
        FrameServer(micro_batch=0)
    server = FrameServer()
    server.register_model("a", build_lenet(seed=0))
    with pytest.raises(ValueError):
        server.serve_frames(np.zeros((2, 1, 28, 28)), "a", offered_fps=0.0)


# ----------------------------------------------------------------------
# warmup()
# ----------------------------------------------------------------------
def test_warmup_preprograms_all_models_on_all_nodes():
    server = FrameServer(num_nodes=2, micro_batch=8, seed=0)
    server.register_model("a", build_lenet(seed=0))
    server.register_model("b", build_lenet(seed=1))
    stats = server.warmup()
    assert stats["models"] == 2
    assert stats["nodes"] == 2
    # One cold program per (model, node) pair — die seeds differ.
    assert stats["cache_misses"] == 4
    assert stats["wall_clock_s"] > 0.0


def test_warmup_makes_serving_miss_free(server, frames):
    server.warmup(frame_shape=(1, 28, 28))
    requests = [
        FrameRequest(frame, "a" if i % 2 == 0 else "b")
        for i, frame in enumerate(frames)
    ]
    report = server.serve(requests, offered_fps=200.0)
    assert report.delivered == len(frames)
    assert report.cache_misses == 0


def test_warmup_is_idempotent(server):
    first = server.warmup()
    second = server.warmup()
    assert first["cache_misses"] == 2
    assert second["cache_misses"] == 0
    # Re-warming swaps each model back in through the cache.
    assert second["cache_hits"] == 2


def test_warmup_subset_and_validation(server):
    stats = server.warmup(model_keys=["a"])
    assert stats["models"] == 1
    assert stats["cache_misses"] == 1
    with pytest.raises(ValueError, match="unknown model key"):
        server.warmup(model_keys=["nope"])


def test_warmup_shape_does_not_poison_other_geometries(frames):
    """Timing tables are keyed by frame geometry, not just die.

    A warmup() traced with one shape must not answer for a stream of a
    different shape — the served stream recomputes its own tables.
    """
    warmed = FrameServer(num_nodes=1, micro_batch=8, seed=0)
    warmed.register_model("a", build_lenet(seed=0))
    warmed.warmup(frame_shape=(1, 32, 32))
    fresh = FrameServer(num_nodes=1, micro_batch=8, seed=0)
    fresh.register_model("a", build_lenet(seed=0))

    report_warmed = warmed.serve_frames(frames, "a", offered_fps=200.0)
    report_fresh = fresh.serve_frames(frames, "a", offered_fps=200.0)
    assert report_warmed.stream.mean_latency_s == report_fresh.stream.mean_latency_s
    assert report_warmed.stream.total_energy_j == report_fresh.stream.total_energy_j
