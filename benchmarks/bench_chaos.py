"""Chaos drill: failover keeps interactive SLOs through injected node loss.

The acceptance scenario for the fleet-resilience layer
(:mod:`repro.engine.chaos` + :mod:`repro.engine.failover`): the ``chaos``
workload (2:1 interactive/batch mix) streams at 2400 FPS into a two-node
fleet while the ``node-loss`` chaos plan kills one node mid-stream with a
frame in flight.  The bench serves the *same* request stream through the
failover ladder of :func:`repro.analysis.robustness_report.
build_resilience_report` — no failover, deadline retries, retries + one
warm spare — and asserts:

* **failover holds the SLO** — the retry+spares rung keeps the
  interactive deadline-hit rate >= 0.95 through the outage;
* **the chaos bites** — the no-failover baseline is measurably worse
  (both availability and interactive hit rate), so the failover delta is
  a real recovery, not an idle pass;
* **determinism** — two runs of the ladder produce identical rows
  (every draw goes through ``derive_rng``);
* **default-path bit-identity** — a default-configured server (no chaos
  plan, retries disabled, zero spares) still reproduces the pinned
  ``mixed_two_nodes_1800fps`` golden from
  ``tests/goldens/serve_default.json`` byte for byte.

The run writes ``BENCH_chaos.json`` at the repo root as the resilience
perf-trajectory entry.  Set ``REPRO_BENCH_QUICK=1`` (CI smoke) for the
shorter 180-frame stream; the ladder, the invariant flags and the
assertions are identical either way, and the guarded writer never lets a
smoke run clobber a full-mode entry.
"""

import dataclasses
import hashlib
import json
import os
import platform

import numpy as np
import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_chaos.json")
GOLDEN_JSON = os.path.join(REPO_ROOT, "tests", "goldens", "serve_default.json")
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

#: Deadline-hit floor the failover rung must hold through the outage.
SLO_TARGET = 0.95


def _ladder(quick: bool):
    """One failover-ladder pass at the bench operating point."""
    from repro.analysis.robustness_report import (
        ResilienceSettings,
        build_resilience_report,
    )

    settings = ResilienceSettings.fast() if quick else ResilienceSettings()
    return build_resilience_report(settings)


def _rows_payload(report) -> list[dict]:
    return [dataclasses.asdict(row) for row in report.rows]


def _default_path_matches_golden() -> bool:
    """Re-serve the pinned mixed stream on a default server and compare.

    Mirrors ``tests/test_engine_scheduler.py`` exactly: a two-node server
    with chaos/retry/spares/brownout at their disabled defaults must stay
    byte-identical to the golden — the resilience layer may not perturb
    the default path even by one ULP.
    """
    from repro.engine import FrameRequest, FrameServer
    from repro.nn.models import build_lenet

    server = FrameServer(
        num_nodes=2,
        micro_batch=8,
        seed=0,
        chaos_plan=None,
        retry_policy=None,
        spares=0,
        brownout=None,
    )
    server.register_model("model-a", build_lenet(seed=0))
    server.register_model("model-b", build_lenet(seed=1))
    frames = np.random.default_rng(42).uniform(0.0, 1.0, (48, 1, 28, 28))
    requests = [
        FrameRequest(frames[i], "model-a" if (i // 6) % 2 == 0 else "model-b")
        for i in range(48)
    ]
    report = server.serve(requests, offered_fps=1800.0)

    responses = []
    for resp in report.responses:
        output = resp.output
        responses.append(
            {
                "index": resp.index,
                "model_key": resp.model_key,
                "node_id": resp.node_id,
                "arrival_s": repr(resp.event.arrival_s),
                "start_s": repr(resp.event.start_s),
                "finish_s": repr(resp.event.finish_s),
                "dropped": resp.event.dropped,
                "remapped": resp.event.remapped,
                "degraded": resp.degraded,
                "output_sha256": (
                    None
                    if output is None
                    else hashlib.sha256(
                        np.ascontiguousarray(output, dtype=float).tobytes()
                    ).hexdigest()
                ),
            }
        )
    actual = {
        "responses": responses,
        "total_energy_j": repr(report.stream.total_energy_j),
        "frames": report.stream.frames,
        "dropped": report.stream.dropped,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "payload_bytes": report.payload_bytes,
        "radio_energy_j": repr(report.radio_energy_j),
        "node_frames": {
            str(node): count
            for node, count in sorted(report.node_frames.items())
        },
        "health": report.health is not None,
    }
    with open(GOLDEN_JSON) as handle:
        expected = json.load(handle)
    return actual == expected["mixed_two_nodes_1800fps"]


def run_chaos_bench(quick: bool = QUICK) -> dict:
    """Serve the failover ladder twice and fold in the invariant flags."""
    first = _ladder(quick)
    second = _ladder(quick)
    rows = _rows_payload(first)
    deterministic = rows == _rows_payload(second)
    by_label = {row["label"]: row for row in rows}
    settings = first.settings
    return {
        "bench": "chaos",
        "schema": 1,
        "quick": quick,
        "chaos_plan": settings.chaos_plan,
        "scenario": settings.scenario,
        "frames": settings.frames,
        "offered_fps": settings.offered_fps,
        "num_nodes": settings.num_nodes,
        "spares": settings.spares,
        "retry_policy": settings.retry_policy,
        "policy": settings.policy,
        "seed": settings.seed,
        "slo_target": SLO_TARGET,
        "rows": rows,
        "baseline_interactive_hit_rate": by_label["no-failover"][
            "interactive_hit_rate"
        ],
        "failover_interactive_hit_rate": by_label["retry+spares"][
            "interactive_hit_rate"
        ],
        "baseline_availability": by_label["no-failover"]["availability"],
        "failover_availability": by_label["retry+spares"]["availability"],
        "failover_recovery_ratio": (
            by_label["retry+spares"]["frames_recovered"]
            / by_label["retry+spares"]["frames_lost_in_flight"]
            if by_label["retry+spares"]["frames_lost_in_flight"]
            else 1.0
        ),
        "deterministic": deterministic,
        "default_bit_identical": _default_path_matches_golden(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


@pytest.fixture(scope="module")
def bench_result(save_artifact):
    from repro.analysis.perf import would_clobber_full_bench, write_bench

    result = run_chaos_bench()
    kept = would_clobber_full_bench(BENCH_JSON, result)
    write_bench(BENCH_JSON, result)
    save_artifact("chaos.txt", json.dumps(result, indent=2))
    if kept:
        print(f"[full-mode trajectory entry at {BENCH_JSON} kept]")
    else:
        print(f"[chaos trajectory entry written to {BENCH_JSON}]")
    return result


def test_failover_holds_interactive_slo_through_node_loss(bench_result):
    """The headline acceptance: retry+spares keeps the deadline-hit floor."""
    assert bench_result["failover_interactive_hit_rate"] >= SLO_TARGET, (
        f"retry+spares held only "
        f"{bench_result['failover_interactive_hit_rate']:.3f} interactive "
        f"hit rate through {bench_result['chaos_plan']!r}"
    )


def test_chaos_measurably_degrades_the_baseline(bench_result):
    """The drill is non-trivial: no failover must be measurably worse."""
    assert (
        bench_result["baseline_interactive_hit_rate"]
        < bench_result["failover_interactive_hit_rate"] - 0.05
    )
    assert (
        bench_result["baseline_availability"]
        < bench_result["failover_availability"] - 0.05
    )


def test_failover_actually_recovered_frames(bench_result):
    """The spare rung re-delivered the in-flight frames the chaos killed."""
    by_label = {row["label"]: row for row in bench_result["rows"]}
    spares = by_label["retry+spares"]
    assert spares["frames_lost_in_flight"] >= 1
    assert spares["frames_recovered"] >= 1
    assert spares["spares_activated"] >= 1


def test_ladder_is_deterministic(bench_result):
    """Same seed -> byte-identical ladder rows (chaos replays exactly)."""
    assert bench_result["deterministic"] is True


def test_default_path_stays_bit_identical(bench_result):
    """Resilience plumbing at disabled defaults leaves the golden intact."""
    assert bench_result["default_bit_identical"] is True


def test_chaos_json_written_at_repo_root(bench_result):
    """The trajectory artifact exists and round-trips as JSON."""
    assert os.path.exists(BENCH_JSON)
    with open(BENCH_JSON) as handle:
        payload = json.load(handle)
    assert payload["bench"] == "chaos"
    assert payload["rows"]
