"""Fig. 8: VAM thresholding transient — regeneration + kernel benchmark."""

import numpy as np
import pytest

from repro.analysis.fig8 import build_fig8, render_fig8
from repro.circuits.vam import VamCircuit
from repro.core.vam import ActivationModulator


@pytest.fixture(scope="module")
def fig8_data():
    return build_fig8()


def test_fig8_regenerates_paper_waveforms(fig8_data, save_artifact):
    """The paper's observation: Out1 -> (1,1), Out2 -> (1,0), Out3 -> (0,0)."""
    save_artifact("fig8_vam_thresholding.txt", render_fig8(fig8_data))
    assert fig8_data.symbols == [2, 1, 0]
    assert fig8_data.t1 == [1, 1, 0]
    assert fig8_data.t2 == [1, 0, 0]


def test_fig8_voltage_windows(fig8_data):
    """Out2 sits between the 0.16 V and 0.32 V references, as printed."""
    assert fig8_data.pixel_voltages_v[0] > 0.32
    assert 0.16 < fig8_data.pixel_voltages_v[1] < 0.32
    assert fig8_data.pixel_voltages_v[2] < 0.16


def test_bench_vam_transient(benchmark):
    """Hot path: the three-pixel 40 ns transient."""
    vam = VamCircuit()
    result = benchmark(vam.threshold_transient)
    assert "Out3t2" in result


def test_bench_frame_ternary_encode(benchmark):
    """Hot path: ternary-encoding a full 128x128x3 frame (per-frame cost)."""
    modulator = ActivationModulator()
    frame = np.random.default_rng(0).uniform(0, 1, (3, 128, 128))
    symbols = benchmark(modulator.encode, frame)
    assert symbols.shape == (3, 128, 128)
