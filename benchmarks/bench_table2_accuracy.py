"""Table II: accuracy across datasets and [W:A] configs — regeneration.

Training cost is the bottleneck, so the bench honours three environment
knobs (results are cached in ``.table2_bench_cache.json`` either way):

* ``REPRO_TABLE2_DATASETS`` — comma-separated subset of
  ``mnist,svhn,cifar10,cifar100`` (default: ``mnist,svhn`` keeps the bench
  suite in the minutes range; the full table is what
  ``examples/table2_full.py`` runs).  The default is a constant: it no
  longer flips to the full table when a cache file happens to exist, so a
  first run and a warm rerun train the same cells deterministically.
* ``REPRO_TABLE2_EPOCHS`` — training epochs per cell (default 2).
* ``REPRO_BENCH_QUICK=1`` — CI smoke mode (see ``conftest.py``): MNIST
  only, 1 epoch, quarter-scale splits.  The accuracy-ordering assertions
  are **flaky by design** at any scale (tiny QAT nets) and are skipped in
  smoke mode so the bench can gate CI on the deterministic shape checks.
"""

import os

import pytest

from repro.analysis.table2 import build_table2, ordering_checks, render_table2
from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.datasets import load_preset
from repro.nn.models import FirstLayerConfig, build_lenet
from repro.sim.accuracy import Table2Settings, train_qat_model

CACHE_PATH = os.path.join(os.path.dirname(__file__), "..", ".table2_bench_cache.json")
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

FLAKY_REASON = (
    "accuracy orderings of 1-2-epoch QAT nets are flaky by design; "
    "smoke mode asserts only the deterministic table shape"
)


def _bench_datasets() -> tuple[str, ...]:
    default = "mnist" if QUICK else "mnist,svhn"
    raw = os.environ.get("REPRO_TABLE2_DATASETS", default)
    return tuple(name.strip() for name in raw.split(",") if name.strip())


#: Snapshot once at import so every test in the module trains (and renders
#: artifacts for) the same deterministic dataset set.
DATASETS = _bench_datasets()


def _bench_settings() -> Table2Settings:
    epochs = int(os.environ.get("REPRO_TABLE2_EPOCHS", "1" if QUICK else "2"))
    if QUICK:
        return Table2Settings(dataset_scale=0.25, epochs=epochs, vgg_epochs=epochs)
    return Table2Settings(epochs=epochs)


@pytest.fixture(scope="module")
def table2_data():
    return build_table2(
        settings=_bench_settings(),
        datasets=DATASETS,
        cache_path=CACHE_PATH,
    )


def test_table2_regenerates(table2_data, save_artifact):
    """All five configuration rows per dataset, baseline included."""
    save_artifact("table2_accuracy.txt", render_table2(table2_data))
    matrix = table2_data.accuracy_matrix()
    assert set(matrix) == {"baseline", "[4:2]", "[3:2]", "[2:2]", "[1:2]"}
    for row in matrix.values():
        assert len(row) == len(DATASETS)


@pytest.mark.skipif(QUICK, reason=FLAKY_REASON)
def test_table2_quantized_configs_useful(table2_data):
    """Every OISA cell stays well above its dataset's chance level."""
    for result in table2_data.results:
        if result.weight_bits is None:
            continue
        chance = 0.01 if "cifar100" in result.dataset else 0.1
        assert result.reported_accuracy > 5 * chance


@pytest.mark.skipif(QUICK, reason=FLAKY_REASON)
def test_table2_qualitative_orderings(table2_data):
    """The paper's robust Table II claims (see ordering_checks docstring)."""
    checks = ordering_checks(table2_data)
    failing = [name for name, holds in checks.items() if not holds]
    assert failing == [], f"ordering checks violated: {failing}"


def test_table2_hardware_error_reported(table2_data):
    """Quantized cells record the realized-weight error of the optics."""
    quantized = [r for r in table2_data.results if r.weight_bits is not None]
    assert quantized
    for result in quantized:
        assert 0.0 < result.weight_relative_error < 0.15


def test_bench_qat_training_epoch(benchmark):
    """Hot path: one QAT training run on the smallest Table II cell."""
    dataset = load_preset("mnist", scale=0.1, seed=0)
    settings = Table2Settings(dataset_scale=0.1, epochs=1)

    def train_once():
        _, accuracy = train_qat_model(
            dataset, FirstLayerConfig(weight_bits=2), settings
        )
        return accuracy

    accuracy = benchmark.pedantic(train_once, iterations=1, rounds=1)
    # Speed benchmark on a deliberately tiny split: only sanity-check the
    # result is a valid accuracy at or above the 10-class chance level.
    assert 0.1 <= accuracy <= 1.0


def test_bench_hardware_inference(benchmark):
    """Hot path: hardware-in-the-loop inference over a test split."""
    dataset = load_preset("mnist", scale=0.25, seed=0)
    settings = Table2Settings(dataset_scale=0.25, epochs=1)
    model, _ = train_qat_model(dataset, FirstLayerConfig(weight_bits=2), settings)
    opc = OpticalProcessingCore(OISAConfig().with_weight_bits(2), seed=7)
    pipeline = HardwareFirstLayerPipeline(model, opc)
    accuracy = benchmark.pedantic(
        pipeline.evaluate,
        args=(dataset.x_test, dataset.y_test),
        iterations=1,
        rounds=1,
    )
    assert 0.1 <= accuracy <= 1.0
