"""Headline textual claims (Sections III-B and IV) — paper vs measured."""

import pytest

from repro.analysis.claims import build_claims, render_claims
from repro.core.config import OISAConfig
from repro.core.mapping import ConvWorkload, macs_per_cycle, plan_convolution


@pytest.fixture(scope="module")
def claims():
    return build_claims(include_fig9=True)


def test_all_headline_claims_hold(claims, save_artifact):
    """Every measured claim lands within its declared tolerance."""
    save_artifact("claims_paper_vs_measured.txt", render_claims(claims))
    failing = [claim.name for claim in claims if not claim.holds]
    assert failing == [], f"claims out of tolerance: {failing}"


def test_exact_structural_claims(claims):
    """The zero-tolerance claims are bit-exact."""
    exact = {claim.name: claim for claim in claims if claim.tolerance == 0.0}
    assert exact["MACs/cycle K=3"].measured_value == 3600
    assert exact["MACs/cycle K=5"].measured_value == 2000
    assert exact["MACs/cycle K=7"].measured_value == 3920
    assert exact["total MRs"].measured_value == 4000
    assert exact["weight mapping iterations"].measured_value == 100


def test_bench_claims_structural(benchmark):
    """Hot path: the mapping arithmetic behind the claims."""
    cfg = OISAConfig()

    def measure():
        return tuple(macs_per_cycle(cfg, k) for k in (3, 5, 7))

    assert benchmark(measure) == (3600, 2000, 3920)


def test_bench_mapping_planner(benchmark):
    """Hot path: planning a first-layer workload onto the OPC."""
    cfg = OISAConfig()
    workload = ConvWorkload(3, 64, 3, 128, 128, padding=1)
    plan = benchmark(plan_convolution, cfg, workload)
    assert plan.mapping_rounds == 1
