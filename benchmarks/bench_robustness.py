"""Robustness studies: faults, per-chip calibration, thermal drift.

Extensions beyond the paper's evaluation (its future-work surface): how the
architecture degrades and what the obvious engineering counter-measures
recover.
"""

import numpy as np
import pytest

from repro.circuits.awc import AwcDesign
from repro.core.awc import AwcWeightMapper
from repro.core.calibration import CalibratedAwcMapper
from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.core.thermal import ThermalModel
from repro.datasets.synthetic import SyntheticSpec, generate_dataset
from repro.datasets.catalog import Dataset
from repro.nn.models import FirstLayerConfig, build_lenet
from repro.nn.optim import SGD, CosineLR
from repro.nn.train import Trainer
from repro.photonics.microring import MicroringResonator
from repro.photonics.tuning import HybridTuning
from repro.sim.faults import FaultSpec, FaultyOpticalCore
from repro.util.tables import format_table


@pytest.fixture(scope="module")
def trained_model_and_data():
    """A small trained QAT model reused by every robustness sweep."""
    spec = SyntheticSpec(
        name="robustness", num_classes=4, image_size=16, channels=1,
        train_size=240, test_size=120, noise_sigma=0.05, jitter_px=1,
        clutter=0.08, seed=5,
    )
    x_train, y_train, x_test, y_test = generate_dataset(spec)
    dataset = Dataset(
        "robustness", x_train, y_train, x_test, y_test, 4, 16, 1, "LeNet"
    )
    model = build_lenet(
        num_classes=4, input_size=16,
        first_layer=FirstLayerConfig(weight_bits=3), seed=0,
    )
    trainer = Trainer(
        model, SGD(model.parameters(), momentum=0.9, weight_decay=1e-4),
        CosineLR(0.05, 1e-4), seed=0,
    )
    trainer.fit(x_train, y_train, epochs=4, batch_size=32)
    return model, dataset


def test_fault_sweep_graceful_degradation(trained_model_and_data, save_artifact):
    """Accuracy vs dead-MR rate: the array degrades gracefully."""
    model, dataset = trained_model_and_data
    rows = []
    accuracies = []
    for rate in (0.0, 0.02, 0.05, 0.1, 0.3):
        opc = OpticalProcessingCore(OISAConfig().with_weight_bits(3), seed=7)
        faulty = FaultyOpticalCore(opc, FaultSpec(dead_mr_rate=rate), seed=9)
        pipeline = HardwareFirstLayerPipeline(model, faulty)
        accuracy = pipeline.evaluate(dataset.x_test, dataset.y_test)
        accuracies.append(accuracy)
        rows.append((f"{rate * 100:.0f}%", accuracy * 100))
    text = format_table(
        ("dead MR rate", "accuracy [%]"),
        rows,
        title="Robustness: accuracy vs dead-microring rate (3-bit LeNet)",
    )
    save_artifact("robustness_dead_mrs.txt", text)
    # A few percent of dead rings costs little; 30% hurts visibly.
    assert accuracies[1] > accuracies[0] - 0.1
    assert accuracies[-1] <= accuracies[0] + 1e-9


def test_calibration_recovers_precision(save_artifact):
    """Pre-distortion shrinks the realized-level error on a bad die."""
    rows = []
    for label, mismatch, offset in (
        ("healthy die", 0.03, 3e-6),
        ("poor die", 0.08, 8e-6),
    ):
        design = AwcDesign(num_bits=4, mismatch_sigma=mismatch, offset_sigma_a=offset)
        mapper = AwcWeightMapper(design, num_units=40, seed=1)
        calibrated = CalibratedAwcMapper(mapper)
        rows.append(
            (
                label,
                mapper.mean_level_error_lsb(),
                calibrated.residual_error_lsb(),
                calibrated.improvement_ratio(),
            )
        )
    text = format_table(
        ("die", "raw err [LSB]", "calibrated err [LSB]", "improvement"),
        rows,
        title="Robustness: per-chip AWC calibration (code pre-distortion)",
    )
    save_artifact("robustness_calibration.txt", text)
    assert all(row[2] <= row[1] for row in rows)


def test_thermal_drift_and_compensation(save_artifact):
    """Open-loop drift error vs the closed-loop residual."""
    thermal = ThermalModel(ring=MicroringResonator(), tuning=HybridTuning())
    weights = np.linspace(0.1, 0.9, 16)
    rows = []
    for delta_t in (0.1, 0.5, 1.0, 2.0):
        open_loop = thermal.open_loop_error(weights, delta_t)
        closed = thermal.closed_loop_error(weights, delta_t)
        power = thermal.compensation_power_w(delta_t, num_mrs=4000)
        rows.append((delta_t, open_loop, closed, power * 1e3))
    text = format_table(
        ("dT [K]", "open-loop RMS err", "closed-loop RMS err", "comp. power [mW]"),
        rows,
        title="Robustness: thermal drift (75 pm/K) and EO/TO compensation",
    )
    save_artifact("robustness_thermal.txt", text)
    for _, open_loop, closed, _ in rows:
        assert closed < open_loop


def test_bench_fault_injection_overhead(benchmark, trained_model_and_data):
    """Fault-wrapped convolution costs about the same as the healthy path."""
    model, dataset = trained_model_and_data
    opc = OpticalProcessingCore(OISAConfig().with_weight_bits(3), seed=7)
    faulty = FaultyOpticalCore(opc, FaultSpec(dead_mr_rate=0.05), seed=9)
    pipeline = HardwareFirstLayerPipeline(model, faulty)
    x = dataset.x_test[:64]
    out = benchmark(pipeline.forward, x)
    assert out.shape == (64, 4)


def test_bench_calibration_lut_construction(benchmark):
    """Building the pre-distortion lookup for a full AWC bank."""
    mapper = AwcWeightMapper(AwcDesign(num_bits=4), num_units=40, seed=0)
    calibrated = benchmark(CalibratedAwcMapper, mapper)
    assert calibrated.num_levels == 16
