"""Shared benchmark fixtures and artifact output.

Every ``bench_*`` module regenerates one of the paper's tables/figures.
Rendered text artifacts are written to ``benchmarks/output/`` so a bench
run leaves the same deliverables the paper prints.

Smoke-mode convention: ``REPRO_BENCH_QUICK=1`` puts every bench that
honours it (``bench_program_latency``, ``bench_degraded_serving``,
``bench_serving_policies``, ``bench_table2_accuracy``) into a CI-sized
run — fewer repeats, shorter streams, smaller training splits — while
keeping the *exact* claims (bit-identity, recovery ratio, SLO-policy
ordering, determinism) asserted.  Smoke runs write their ``BENCH_*.json``
trajectory entries through the guarded
:func:`repro.analysis.perf.write_bench`, which refuses to overwrite a
full-mode entry with a ``quick`` payload.  Flaky-by-design
accuracy-ordering assertions are skipped in smoke mode so the benches can
run in CI.  Each bench module reads the knob into a module-level ``QUICK``
constant at import time (skipif decorators evaluate at collection, and a
mid-run flip would be inconsistent).
"""

from __future__ import annotations

import os

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def artifact_dir() -> str:
    """Directory collecting the rendered table/figure artifacts."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_artifact(artifact_dir):
    """Write (and echo) a rendered artifact."""

    def _save(name: str, text: str) -> str:
        path = os.path.join(artifact_dir, name)
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[artifact saved to {path}]")
        return path

    return _save
