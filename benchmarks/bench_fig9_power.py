"""Fig. 9: power comparison across platforms — regeneration + benchmarks."""

import numpy as np
import pytest

from repro.analysis.fig9 import build_fig9, render_fig9
from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel, default_plan, resnet18_first_layer_workload
from repro.sim.platforms import get_platform, platform_registry


@pytest.fixture(scope="module")
def fig9_data():
    return build_fig9()


def test_fig9_regenerates_paper_series(fig9_data, save_artifact):
    """OISA lowest at every bit config; reductions near 8.3x/7.9x/18.4x."""
    save_artifact("fig9_power_comparison.txt", render_fig9(fig9_data))
    oisa = np.asarray(fig9_data.power_w["OISA"])
    for name in ("Crosslight", "AppCip", "ASIC"):
        assert np.all(np.asarray(fig9_data.power_w[name]) > oisa)
    assert fig9_data.reductions_vs_oisa["Crosslight"] == pytest.approx(8.3, rel=0.25)
    assert fig9_data.reductions_vs_oisa["AppCip"] == pytest.approx(7.9, rel=0.25)
    assert fig9_data.reductions_vs_oisa["ASIC"] == pytest.approx(18.4, rel=0.25)


def test_fig9_breakdown_attribution(fig9_data):
    """The paper's reading: the gap comes from ADC/DAC elimination."""
    crosslight = fig9_data.breakdowns["Crosslight"][-1]  # [4,2]
    converter_share = (crosslight["adc"] + crosslight["dac"]) / sum(
        crosslight.values()
    )
    assert converter_share > 0.5
    oisa = fig9_data.breakdowns["OISA"][-1]
    assert "adc" not in oisa and "dac" not in oisa


def test_bench_fig9_full_sweep(benchmark):
    """Regenerating the whole figure (4 platforms x 4 bit configs)."""
    data = benchmark(build_fig9)
    assert len(data.power_w["OISA"]) == 4


def test_bench_oisa_average_power(benchmark):
    """Hot path: one OISA average-power evaluation."""
    model = OISAEnergyModel(OISAConfig())
    plan = default_plan()
    breakdown = benchmark(model.average_power_w, plan)
    assert breakdown.total > 0.0


@pytest.mark.parametrize("key", platform_registry())
def test_bench_platform_simulate_conv(benchmark, key):
    """Hot path: one conv simulation per registered platform."""
    platform = get_platform(key)
    workload = resnet18_first_layer_workload()
    report = benchmark(platform.simulate_conv, workload, 4)
    assert report.average_power_w > 0.0
    assert report.platform == platform.name
