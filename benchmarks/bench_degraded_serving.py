"""Degraded-mode serving: throughput through a fault → recalibrate cycle.

The acceptance scenario for the serving-health subsystem
(:mod:`repro.engine.health`): a two-node :class:`~repro.engine.FrameServer`
runs a steady 1000 FPS stream under the named ``"transient"`` fault
profile — each node suffers one recoverable upset mid-stream, the SNR
watchdog trips, the node recalibrates (cache invalidated, deterministic
remap) and rejoins the fleet.  The bench splits the stream into three
simulated-time windows:

* **pre-fault** — before the first upset;
* **degraded** — between the first upset and the last recalibration;
* **recovered** — after the last recalibration.

and asserts the recovered window sustains **>= 90% of the pre-fault
throughput** (simulated delivered FPS, so the number is deterministic and
environment-independent).  The run writes ``BENCH_degraded.json`` at the
repo root as the degraded-serving perf-trajectory entry, next to
``BENCH_program.json``.

Set ``REPRO_BENCH_QUICK=1`` (CI smoke) for a shorter stream; the window
arithmetic and the recovery assertion are identical either way.
"""

import json
import os
import platform

import numpy as np
import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_degraded.json")
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

PROFILE = "transient"
OFFERED_FPS = 1000.0


def _window_fps(events, start_s: float, end_s: float) -> float:
    """Delivered frames per simulated second with arrival in [start, end)."""
    delivered = [
        e for e in events if not e.dropped and start_s <= e.arrival_s < end_s
    ]
    span = end_s - start_s
    return len(delivered) / span if span > 0 else 0.0


def run_degraded_bench(quick: bool = QUICK, seed: int = 0) -> dict:
    """Serve one degraded stream and measure the three throughput windows."""
    from repro.engine import FrameServer
    from repro.nn.models import build_lenet

    frames = 250 if quick else 400
    server = FrameServer(
        num_nodes=2, micro_batch=8, seed=seed, fault_profile=PROFILE
    )
    server.register_model("model-a", build_lenet(seed=seed))
    server.warmup(frame_shape=(1, 28, 28))
    stack = np.random.default_rng(seed).uniform(0.0, 1.0, (frames, 1, 28, 28))
    report = server.serve_frames(stack, "model-a", offered_fps=OFFERED_FPS)

    health = report.health
    upsets = [e for e in health.events if e.kind == "upset"]
    recals = [e for e in health.events if e.kind == "recalibrated"]
    if not upsets or not recals:
        raise RuntimeError(
            f"profile {PROFILE!r} produced no full fault cycle in {frames} "
            f"frames (upsets={len(upsets)}, recals={len(recals)})"
        )
    fault_start = min(e.time_s for e in upsets)
    recovered_at = max(e.time_s for e in recals)
    end = report.stream.events[-1].arrival_s + 1.0 / OFFERED_FPS

    pre_fps = _window_fps(report.stream.events, 0.0, fault_start)
    degraded_fps = _window_fps(report.stream.events, fault_start, recovered_at)
    post_fps = _window_fps(report.stream.events, recovered_at, end)
    return {
        "bench": "degraded_serving",
        "schema": 1,
        "quick": quick,
        "profile": PROFILE,
        "frames": frames,
        "offered_fps": OFFERED_FPS,
        "fault_start_s": fault_start,
        "recovered_at_s": recovered_at,
        "pre_fault_fps": pre_fps,
        "degraded_fps": degraded_fps,
        "recovered_fps": post_fps,
        "recovery_ratio": post_fps / pre_fps if pre_fps > 0 else 0.0,
        "upsets": health.upsets,
        "recalibrations": health.recalibrations,
        "degraded_frames": health.degraded_frames,
        "degraded_fraction": health.degraded_fraction,
        "dropped": report.stream.dropped,
        "cache_invalidations": server.cache.stats.invalidations,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


@pytest.fixture(scope="module")
def bench_result(save_artifact):
    from repro.analysis.perf import would_clobber_full_bench, write_bench

    result = run_degraded_bench()
    # Guarded writer: a quick (smoke) run never clobbers a full-mode
    # trajectory entry at the repo root.
    kept = would_clobber_full_bench(BENCH_JSON, result)
    write_bench(BENCH_JSON, result)
    save_artifact("degraded_serving.txt", json.dumps(result, indent=2))
    if kept:
        print(f"[full-mode trajectory entry at {BENCH_JSON} kept]")
    else:
        print(f"[degraded-serving trajectory entry written to {BENCH_JSON}]")
    return result


def test_watchdog_recovers_90pct_throughput(bench_result):
    """The headline acceptance: post-recalibration >= 90% of pre-fault FPS."""
    assert bench_result["recalibrations"] >= 1
    assert bench_result["recovery_ratio"] >= 0.9, (
        f"watchdog recovered only {bench_result['recovery_ratio']:.2f} of "
        f"pre-fault throughput"
    )


def test_fault_cycle_actually_degraded_the_stream(bench_result):
    """The scenario is non-trivial: upsets fired and frames ran degraded."""
    assert bench_result["upsets"] >= 1
    assert bench_result["degraded_frames"] >= 1
    assert bench_result["cache_invalidations"] >= 1


def test_degraded_stream_is_deterministic():
    """Two identical servers reproduce the same degraded outputs exactly."""
    first = run_degraded_bench(quick=True, seed=0)
    second = run_degraded_bench(quick=True, seed=0)
    for key in (
        "fault_start_s",
        "recovered_at_s",
        "pre_fault_fps",
        "degraded_fps",
        "recovered_fps",
        "degraded_frames",
        "dropped",
    ):
        assert first[key] == second[key], key


def test_degraded_json_written_at_repo_root(bench_result):
    """The trajectory artifact exists and round-trips as JSON."""
    assert os.path.exists(BENCH_JSON)
    with open(BENCH_JSON) as handle:
        payload = json.load(handle)
    assert payload["bench"] == "degraded_serving"
    assert payload["recovery_ratio"] > 0.0
