"""Scheduling-policy bench: SLO attainment on the mixed-tenant burst mix.

The acceptance scenario for the multi-tenant scheduling engine
(:mod:`repro.engine.scheduler` / :mod:`repro.engine.admission`): the
``mixed-tenants`` workload — an interactive LeNet tenant with a 6 ms
deadline sharing two nodes with bursty batch tenants (MLP + VGG-16 stem)
that oversubscribe the fleet during bursts — served under each registered
policy at the same seed.  The headline claim:

* the **SLO-aware** policy (priority + per-tenant WFQ + backpressure)
  must **beat greedy-FIFO on the interactive tenant's deadline-hit
  rate** — greedy drops burst overflow indiscriminately, the SLO-aware
  policy queues interactive frames through the burst and sheds batch
  traffic instead;
* the interactive tenant's p99 latency must stay within its deadline
  under the SLO-aware policy.

All quantities are *simulated*-time statistics, so the numbers are
deterministic and environment-independent.  The run writes
``BENCH_serving.json`` at the repo root (next to ``BENCH_program.json``
and ``BENCH_degraded.json``) through the guarded
:func:`~repro.analysis.perf.write_bench` — a ``REPRO_BENCH_QUICK=1``
smoke run (shorter stream) never clobbers a full-mode trajectory entry.
"""

import json
import os
import platform

import numpy as np
import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_serving.json")
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

SCENARIO = "mixed-tenants"
OFFERED_FPS = 2600.0
NUM_NODES = 2
POLICIES = ("greedy", "edf", "slo")


def _class_stats(report, name):
    stats = report.slo.classes[name]
    p99 = stats.p99_latency_s
    return {
        "offered": stats.offered,
        "delivered": stats.delivered,
        "hit_rate": stats.hit_rate,
        # NaN means "zero frames delivered, no tail to measure" — store
        # the explicit null marker, never a literal NaN in the payload.
        "p99_latency_s": None if p99 != p99 else p99,
        "dropped_busy": stats.dropped_busy,
        "shed": stats.shed,
        "expired": stats.expired,
    }


def run_policy_bench(quick: bool = QUICK, seed: int = 0) -> dict:
    """Serve the mixed-tenant burst scenario under every policy."""
    from repro.engine import FrameServer
    from repro.engine.workloads import MIXED_TENANT_CLASSES, build_scenario

    frames = 150 if quick else 300
    policies = {}
    for policy in POLICIES:
        scenario = build_scenario(
            SCENARIO, frames=frames, offered_fps=OFFERED_FPS, seed=seed
        )
        server = FrameServer(
            num_nodes=NUM_NODES, micro_batch=8, seed=seed, policy=policy
        )
        report = server.serve_scenario(scenario)
        policies[policy] = {
            "interactive": _class_stats(report, "interactive"),
            "batch": _class_stats(report, "batch"),
            "overall_hit_rate": report.slo.overall_hit_rate,
            "drop_rate": report.stream.drop_rate,
            "total_energy_j": report.stream.total_energy_j,
        }
    interactive_deadline = MIXED_TENANT_CLASSES["lenet-4b"].deadline_s
    return {
        "bench": "serving_policies",
        "schema": 1,
        "quick": quick,
        "scenario": SCENARIO,
        "offered_fps": OFFERED_FPS,
        "num_nodes": NUM_NODES,
        "frames": frames,
        "interactive_deadline_s": interactive_deadline,
        "policies": policies,
        "slo_vs_greedy_hit_gain": (
            policies["slo"]["interactive"]["hit_rate"]
            - policies["greedy"]["interactive"]["hit_rate"]
        ),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


@pytest.fixture(scope="module")
def bench_result(save_artifact):
    from repro.analysis.perf import would_clobber_full_bench, write_bench

    result = run_policy_bench()
    kept = would_clobber_full_bench(BENCH_JSON, result)
    write_bench(BENCH_JSON, result)
    save_artifact("serving_policies.txt", json.dumps(result, indent=2))
    if kept:
        print(f"[full-mode trajectory entry at {BENCH_JSON} kept]")
    else:
        print(f"[serving-policy trajectory entry written to {BENCH_JSON}]")
    return result


def test_slo_policy_beats_greedy_on_interactive_hit_rate(bench_result):
    """The headline acceptance: SLO-aware > greedy-FIFO for the tenant
    that paid for a deadline."""
    greedy = bench_result["policies"]["greedy"]["interactive"]
    slo = bench_result["policies"]["slo"]["interactive"]
    assert slo["hit_rate"] > greedy["hit_rate"], (
        f"SLO-aware ({slo['hit_rate']:.3f}) did not beat greedy "
        f"({greedy['hit_rate']:.3f}) on interactive deadline-hit rate"
    )
    assert slo["hit_rate"] >= 0.99


def test_interactive_p99_within_deadline_under_slo_policy(bench_result):
    slo = bench_result["policies"]["slo"]["interactive"]
    # A null p99 (zero delivered frames) must fail loudly, not slip past
    # the deadline check the way a `NaN <= deadline` comparison would.
    assert slo["p99_latency_s"] is not None, "interactive tenant delivered 0 frames"
    assert slo["p99_latency_s"] <= bench_result["interactive_deadline_s"]


def test_burst_scenario_actually_stresses_the_fleet(bench_result):
    """Non-trivial load: greedy visibly drops, batch traffic gets shed or
    expires under the SLO-aware policy."""
    greedy = bench_result["policies"]["greedy"]
    slo = bench_result["policies"]["slo"]
    assert greedy["drop_rate"] > 0.0
    assert greedy["interactive"]["dropped_busy"] > 0
    assert slo["batch"]["shed"] + slo["batch"]["expired"] > 0


def test_policy_bench_is_deterministic():
    first = run_policy_bench(quick=True, seed=0)
    second = run_policy_bench(quick=True, seed=0)
    assert first["policies"] == second["policies"]


def test_serving_json_written_at_repo_root(bench_result):
    assert os.path.exists(BENCH_JSON)
    with open(BENCH_JSON) as handle:
        payload = json.load(handle)
    assert payload["bench"] == "serving_policies"
    assert "slo" in payload["policies"]
