"""Weight-programming latency: vectorized hot path vs the scalar reference.

The acceptance scenario: a cold ``OpticalProcessingCore.program()`` on a
VGG16-sized first layer (64x3x3x3, 4-bit) must run >= 10x faster than the
pre-vectorization scalar path (retained verbatim in
:mod:`repro.core.reference`), with **bit-identical** results — the batched
code performs the same elementwise float ops, just without the Python
loops.  The run also times warm cache installs and a warmed FrameServer
stream, and writes ``BENCH_program.json`` at the repo root: the first
entry of the perf trajectory, the baseline every future PR measures
against.

Set ``REPRO_BENCH_QUICK=1`` (CI smoke) for a fewer-repeats run; the
timing floors are asserted either way because the speedup is ~25x on an
idle box — 10x holds with margin even under CI noise.
"""

import json
import os

import pytest

from repro.analysis.perf import run_bench, write_bench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_program.json")
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


@pytest.fixture(scope="module")
def bench_result(save_artifact):
    result = run_bench(quick=QUICK)
    write_bench(BENCH_JSON, result)
    save_artifact(
        "program_latency.txt",
        json.dumps(result, indent=2),
    )
    print(f"[perf trajectory entry written to {BENCH_JSON}]")
    return result


def test_cold_program_at_least_10x_scalar(bench_result):
    """The headline acceptance: >= 10x faster cold program on VGG16 layer 1."""
    cold = bench_result["cold_program"]
    assert cold["workload"]["shape"] == [64, 3, 3, 3]
    assert cold["workload"]["weight_bits"] == 4
    assert cold["speedup"] >= 10.0, (
        f"expected >= 10x over the scalar reference, measured "
        f"{cold['speedup']:.1f}x"
    )


def test_cold_program_bit_identical_to_scalar(bench_result):
    """Vectorization must not change a single bit of the mapping."""
    assert bench_result["cold_program"]["bit_identical"] is True


def test_warm_install_is_cheaper_than_cold_program(bench_result):
    """A cache-hit reinstall must undercut even the vectorized cold path."""
    warm = bench_result["warm_install"]
    assert warm["per_install_s"] < warm["cold_program_s"]
    assert warm["speedup_vs_cold"] > 1.0


def test_engine_serves_warmed_stream_without_misses(bench_result):
    """After warmup() every kernel swap in the stream is a cache hit."""
    engine = bench_result["engine"]
    assert engine["delivered"] == engine["frames"]
    assert engine["warmup"]["cache_misses"] == 2  # one per kernel set
    assert engine["cache_misses"] == 0
    assert engine["wall_clock_fps"] > 0.0


def test_bench_json_written_at_repo_root(bench_result):
    """The perf-trajectory artifact exists and round-trips as JSON."""
    assert os.path.exists(BENCH_JSON)
    with open(BENCH_JSON) as handle:
        payload = json.load(handle)
    assert payload["bench"] == "program_latency"
    assert payload["cold_program"]["speedup"] > 0.0
