"""Multi-core fan-out bench: serial vs process warmup and capacity grids.

PR 3 and PR 6 vectorized the compute paths; this bench measures the
fan-out layer wrapped around them (:mod:`repro.util.parallel`): a cold
full-zoo :meth:`~repro.engine.server.FrameServer.warmup` and a
:func:`~repro.analysis.capacity.build_capacity_report` grid, each run
serially and over the process backend (see
:func:`repro.analysis.perf.run_parallel_bench`).

Two claims, asserted at different strengths:

* **bit-identity** — the parallel runs must leave byte-identical server
  state / reports.  Exact on every host, asserted in full *and* smoke
  mode (this is the load-bearing ordered-merge contract);
* **≥2x wall-clock speedup** — asserted only in full mode on hosts with
  ≥4 cores.  On fewer cores the process backend is pure IPC overhead and
  the payload honestly records a speedup below 1 (the committed
  trajectory entry states its ``cores``).

The run writes ``BENCH_parallel.json`` at the repo root through the
guarded :func:`~repro.analysis.perf.write_bench`; ``REPRO_BENCH_QUICK=1``
smoke runs never clobber a full-mode trajectory entry.
"""

import json
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_parallel.json")
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


@pytest.fixture(scope="module")
def bench_result(save_artifact):
    from repro.analysis.perf import (
        run_parallel_bench,
        would_clobber_full_bench,
        write_bench,
    )

    result = run_parallel_bench(quick=QUICK)
    kept = would_clobber_full_bench(BENCH_JSON, result)
    write_bench(BENCH_JSON, result)
    save_artifact("parallel_fanout.txt", json.dumps(result, indent=2))
    if kept:
        print(f"[full-mode trajectory entry at {BENCH_JSON} kept]")
    else:
        print(f"[parallel-fanout trajectory entry written to {BENCH_JSON}]")
    return result


def test_parallel_warmup_bit_identical(bench_result):
    """Process-backend warmup leaves byte-identical serving state."""
    assert bench_result["zoo_warmup"]["bit_identical"] is True


def test_parallel_capacity_bit_identical(bench_result):
    """Process-backend capacity report is byte-identical to serial."""
    assert bench_result["capacity_grid"]["bit_identical"] is True


def test_process_backend_speedup_on_multicore(bench_result):
    """The ≥2x claim: full mode, ≥4 cores (the payload records both)."""
    if bench_result["quick"]:
        pytest.skip("speedup claim is asserted on full-mode runs only")
    if bench_result["cores"] < 4:
        pytest.skip(
            f"host has {bench_result['cores']} core(s); the ≥2x claim "
            "needs ≥4 (process fan-out is IPC overhead on fewer)"
        )
    for workload in ("zoo_warmup", "capacity_grid"):
        speedup = bench_result[workload]["speedup"]
        assert speedup >= 2.0, (
            f"{workload}: process backend at {speedup:.2f}x on "
            f"{bench_result['cores']} cores is below the 2x floor"
        )


def test_parallel_json_is_strict_json(bench_result):
    """The payload on disk parses with NaN/Infinity rejected."""

    def reject(name):
        raise AssertionError(f"non-JSON constant {name!r} in {BENCH_JSON}")

    assert os.path.exists(BENCH_JSON)
    with open(BENCH_JSON) as handle:
        payload = json.load(handle, parse_constant=reject)
    assert payload["bench"] == "parallel"
    assert payload["cores"] >= 1
    assert payload["zoo_warmup"]["serial_s"] > 0
