"""Multi-core fan-out bench: pools, shm transport, warm store, fan-out.

PR 3 and PR 6 vectorized the compute paths; this bench measures the
fan-out layer wrapped around them (:mod:`repro.util.parallel`) and the
persistence layer underneath (:mod:`repro.engine.store`), via
:func:`repro.analysis.perf.run_parallel_bench` (schema 2):

* ``pool_reuse`` — cold spawn vs persistent-pool reuse on a zoo warmup;
* ``zoo_warmup`` / ``capacity_grid`` — serial vs warm-pool process
  fan-out (the original schema-1 legs);
* ``shm_transport`` — shared-memory ndarray transport vs plain pickle;
* ``warm_store`` — cold programming vs content-addressed store restore.

Claims, asserted at different strengths:

* **bit-identity** — every alternative path (process fan-out, warm
  pool, shm transport, store restore) must leave byte-identical server
  state / reports.  Exact on every host, asserted in full *and* smoke
  mode (this is the load-bearing ordered-merge contract);
* **warm store programs nothing** — the second warmup against a
  populated store runs zero mapping chains (``misses == 0``) and beats
  cold programming ≥10x.  The invariant is exact everywhere; the 10x is
  full-mode-only but **not** core-gated (npz restore vs mapping chain
  is not a parallelism claim);
* **≥2x wall-clock fan-out speedups** — asserted only in full mode on
  hosts with ≥4 cores.  On fewer cores the process backend is pure IPC
  overhead and the payload honestly records a speedup below 1 (the
  committed trajectory entry states its ``cores``).

The run writes ``BENCH_parallel.json`` at the repo root through the
guarded :func:`~repro.analysis.perf.write_bench`; ``REPRO_BENCH_QUICK=1``
smoke runs never clobber a full-mode trajectory entry.
"""

import json
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_parallel.json")
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


@pytest.fixture(scope="module")
def bench_result(save_artifact):
    from repro.analysis.perf import (
        run_parallel_bench,
        would_clobber_full_bench,
        write_bench,
    )

    result = run_parallel_bench(quick=QUICK)
    kept = would_clobber_full_bench(BENCH_JSON, result)
    write_bench(BENCH_JSON, result)
    save_artifact("parallel_fanout.txt", json.dumps(result, indent=2))
    if kept:
        print(f"[full-mode trajectory entry at {BENCH_JSON} kept]")
    else:
        print(f"[parallel-fanout trajectory entry written to {BENCH_JSON}]")
    return result


def test_parallel_warmup_bit_identical(bench_result):
    """Process-backend warmup leaves byte-identical serving state."""
    assert bench_result["zoo_warmup"]["bit_identical"] is True


def test_parallel_capacity_bit_identical(bench_result):
    """Process-backend capacity report is byte-identical to serial."""
    assert bench_result["capacity_grid"]["bit_identical"] is True


def test_pool_reuse_bit_identical(bench_result):
    """Warm-pool warmup leaves byte-identical serving state vs serial."""
    assert bench_result["pool_reuse"]["bit_identical"] is True


def test_shm_transport_bit_identical(bench_result):
    """Shared-memory transport delivers byte-identical capacity reports."""
    assert bench_result["shm_transport"]["bit_identical"] is True


def test_warm_store_bit_identical(bench_result):
    """Store-restored programs serve byte-for-byte like fresh ones."""
    warm = bench_result["warm_store"]
    assert warm["bit_identical"] is True
    assert warm["restored_bit_identical"] is True


def test_warm_store_programs_nothing(bench_result):
    """Second warmup against a populated store runs zero mapping chains.

    Content addressing dedupes: zoo families sharing an identical first
    layer collapse to one entry, so ``entries`` may trail ``pairs`` —
    but every distinct program must come back from the store exactly
    once (``store_hits == entries``), with zero mapping chains run.
    """
    warm = bench_result["warm_store"]
    assert warm["warm_programs_zero"] is True
    assert warm["store_hits"] == warm["entries"]
    assert 0 < warm["entries"] <= warm["pairs"]


def test_warm_store_speedup(bench_result):
    """The ≥10x store claim: full mode, any core count (no parallelism).

    Measured on the program-bound ``WARM_STORE_LAYER_SHAPE`` layer —
    the zoo's tiny first layers are capped by the fixed per-entry
    restore floor (the payload records that honestly as
    ``zoo_warmup_gain``, unasserted).
    """
    if bench_result["quick"]:
        pytest.skip("speedup claim is asserted on full-mode runs only")
    speedup = bench_result["warm_store"]["speedup"]
    assert speedup >= 10.0, (
        f"warm_store: restore at {speedup:.2f}x vs cold programming is "
        "below the 10x floor"
    )


def test_pool_reuse_speedup_on_multicore(bench_result):
    """The ≥2x warm-pool-vs-serial claim: full mode, ≥4 cores."""
    if bench_result["quick"]:
        pytest.skip("speedup claim is asserted on full-mode runs only")
    if bench_result["cores"] < 4:
        pytest.skip(
            f"host has {bench_result['cores']} core(s); the ≥2x claim "
            "needs ≥4 (process fan-out is IPC overhead on fewer)"
        )
    speedup = bench_result["pool_reuse"]["speedup"]
    assert speedup >= 2.0, (
        f"pool_reuse: warm pool at {speedup:.2f}x vs serial on "
        f"{bench_result['cores']} cores is below the 2x floor"
    )


def test_process_backend_speedup_on_multicore(bench_result):
    """The ≥2x claim: full mode, ≥4 cores (the payload records both)."""
    if bench_result["quick"]:
        pytest.skip("speedup claim is asserted on full-mode runs only")
    if bench_result["cores"] < 4:
        pytest.skip(
            f"host has {bench_result['cores']} core(s); the ≥2x claim "
            "needs ≥4 (process fan-out is IPC overhead on fewer)"
        )
    for workload in ("zoo_warmup", "capacity_grid"):
        speedup = bench_result[workload]["speedup"]
        assert speedup >= 2.0, (
            f"{workload}: process backend at {speedup:.2f}x on "
            f"{bench_result['cores']} cores is below the 2x floor"
        )


def test_parallel_json_is_strict_json(bench_result):
    """The payload on disk parses with NaN/Infinity rejected."""

    def reject(name):
        raise AssertionError(f"non-JSON constant {name!r} in {BENCH_JSON}")

    assert os.path.exists(BENCH_JSON)
    with open(BENCH_JSON) as handle:
        payload = json.load(handle, parse_constant=reject)
    assert payload["bench"] == "parallel"
    assert payload["schema"] == 2
    assert payload["cores"] >= 1
    assert payload["zoo_warmup"]["serial_s"] > 0
    assert 0 < payload["warm_store"]["entries"] <= payload["warm_store"]["pairs"]
