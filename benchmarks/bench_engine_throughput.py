"""Frame-serving engine: batched+cached FrameServer vs naive per-frame loop.

The acceptance scenario: a 64-frame stream with one mid-stream kernel swap
(frames 0-31 on model A, 32-63 on model B).  The naive deployment — what
the pre-engine API supports — walks the stream one frame at a time through
``HardwareFirstLayerPipeline.forward`` and rebuilds the pipeline at every
kernel-set boundary, re-running the AWC mapping chain.  The ``FrameServer``
micro-batches the same frames and swaps kernel sets through the
weight-program cache.

Two streams are measured, one per engine mechanism:

* **dense (MLP/VOM) stream** — the AWC mapping chain of a first dense
  layer walks tens of thousands of MR targets, so the naive loop's
  swap-time reprogramming dominates; the program cache removes it
  entirely (orders of magnitude, asserted >= 2x).
* **conv (CNN) stream** — kernel sets are small, so the win is
  micro-batching the forward path (~2x on an idle machine; asserted
  at a noise-proof floor and recorded in the artifact).
"""

import time

import numpy as np
import pytest

from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.engine import FrameRequest, FrameServer
from repro.nn.models import build_lenet, build_mlp

NUM_FRAMES = 64
SWAP_AT = NUM_FRAMES // 2
MICRO_BATCH = 16
KEYS = ["model-a" if i < SWAP_AT else "model-b" for i in range(NUM_FRAMES)]


@pytest.fixture(scope="module")
def conv_stream():
    rng = np.random.default_rng(7)
    frames = rng.uniform(0.0, 1.0, (NUM_FRAMES, 1, 28, 28))
    models = {
        "model-a": build_lenet(seed=0),
        "model-b": build_lenet(seed=1),
    }
    return frames, models


@pytest.fixture(scope="module")
def dense_stream():
    rng = np.random.default_rng(11)
    frames = rng.uniform(0.0, 1.0, (NUM_FRAMES, 1, 28, 28))
    models = {
        "model-a": build_mlp(in_features=784, hidden=(32, 16), seed=0),
        "model-b": build_mlp(in_features=784, hidden=(32, 16), seed=1),
    }
    return frames, models


def run_naive(frames, models, seed=0, enable_noise=True):
    """Today's per-frame deployment: one forward per frame, reprogram on swap."""
    opc = OpticalProcessingCore(
        seed=seed,
        enable_crosstalk=enable_noise,
        enable_read_noise=enable_noise,
    )
    pipeline = None
    active = None
    outputs = []
    for frame, key in zip(frames, KEYS):
        if key != active:
            # A kernel swap re-runs quantize + AWC realization + crosstalk
            # + tuning pricing from scratch.
            pipeline = HardwareFirstLayerPipeline(models[key], opc)
            active = key
        outputs.append(pipeline.forward(frame[None]))
    return np.concatenate(outputs, axis=0)


def make_server(models, **kwargs):
    server = FrameServer(num_nodes=1, micro_batch=MICRO_BATCH, seed=0, **kwargs)
    for key, model in models.items():
        server.register_model(key, model)
    return server


def run_server(server, frames):
    requests = [
        FrameRequest(frame, key) for frame, key in zip(frames, KEYS)
    ]
    return server.serve(requests, offered_fps=1000.0)


def best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure(stream, save_artifact, label):
    frames, models = stream
    server = make_server(models)
    # Warm-up: first contact programs both kernel sets (cache misses) and
    # traces the timing tables; steady-state serving is what we measure.
    warm = run_server(server, frames)
    assert warm.cache_misses == 2

    naive_s, _ = best_of(lambda: run_naive(frames, models))
    server_s, report = best_of(lambda: run_server(server, frames))

    assert report.delivered == NUM_FRAMES
    assert report.cache_misses == 0  # swaps served from the program cache

    speedup = naive_s / server_s
    save_artifact(
        f"engine_throughput_{label}.txt",
        "\n".join(
            [
                f"FrameServer vs naive per-frame loop — {label} stream "
                f"({NUM_FRAMES} frames, 1 kernel swap, micro-batch {MICRO_BATCH})",
                f"naive per-frame : {NUM_FRAMES / naive_s:10.1f} frames/s "
                f"({naive_s * 1e3:.1f} ms)",
                f"batched server  : {NUM_FRAMES / server_s:10.1f} frames/s "
                f"({server_s * 1e3:.1f} ms)",
                f"speedup         : {speedup:10.2f}x",
            ]
        ),
    )
    return speedup


def test_cached_server_at_least_2x_naive_on_swap_stream(dense_stream, save_artifact):
    """The headline acceptance: cached/batched serving >= 2x the naive loop.

    On the dense (VOM) first layer the naive loop re-runs a ~10^4-target
    AWC mapping at the swap and at every stream restart; the server's
    program cache eliminates both, so the measured gap is far beyond 2x.
    """
    speedup = measure(dense_stream, save_artifact, "dense")
    assert speedup >= 2.0, f"expected >= 2x, measured {speedup:.2f}x"


def test_batched_server_beats_naive_on_conv_stream(conv_stream, save_artifact):
    """Micro-batching alone: ~2x on an idle box; assert a noise-proof floor."""
    speedup = measure(conv_stream, save_artifact, "conv")
    assert speedup >= 1.3, f"expected >= 1.3x, measured {speedup:.2f}x"


def test_server_outputs_match_naive_numerics(conv_stream):
    """Micro-batching must not change what is computed.

    With read noise disabled the batched server and the per-frame loop are
    the same arithmetic; the logits must agree to float tolerance.
    """
    frames, models = conv_stream
    server = make_server(models, enable_noise=False)
    report = run_server(server, frames)
    served = np.stack([resp.output for resp in report.responses])

    naive = run_naive(
        frames,
        models,
        seed=server.nodes[0].opc.seed,
        enable_noise=False,
    )
    np.testing.assert_allclose(served, naive, rtol=1e-9, atol=1e-9)


def test_bench_server_steady_state(benchmark, conv_stream):
    """Wall-clock of one steady-state 64-frame serve() call."""
    frames, models = conv_stream
    server = make_server(models)
    run_server(server, frames)  # warm the cache

    report = benchmark(run_server, server, frames)
    assert report.delivered == NUM_FRAMES


def test_bench_naive_per_frame(benchmark, conv_stream):
    """Wall-clock of the naive per-frame loop on the same stream."""
    frames, models = conv_stream
    outputs = benchmark(run_naive, frames, models)
    assert outputs.shape[0] == NUM_FRAMES
