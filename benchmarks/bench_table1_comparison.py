"""Table I: PIS/PNS comparison — regeneration + benchmarks."""

import pytest

from repro.analysis.table1 import build_oisa_row, build_table1, render_table1
from repro.core.accelerator import OISAAccelerator

import numpy as np


@pytest.fixture(scope="module")
def table1_data():
    return build_table1()


def test_table1_regenerates(table1_data, save_artifact):
    """All ten literature rows plus the measured OISA row."""
    save_artifact("table1_comparison.txt", render_table1(table1_data))
    assert len(table1_data.literature) == 10
    row = table1_data.oisa_row
    assert row["frame_rate_fps"] == "1000"
    assert float(row["efficiency_tops_per_watt"]) == pytest.approx(6.68, rel=0.03)


def test_table1_oisa_power_band(table1_data):
    """Measured Table-I power falls inside the paper's 0.12-0.34 mW band."""
    power_mw = float(table1_data.oisa_row["power_mw"])
    assert 0.1 < power_mw < 0.4


def test_table1_oisa_wins_cnn_efficiency(table1_data):
    """OISA is the most efficient first-layer-CNN platform in the table."""
    measured = float(table1_data.oisa_row["efficiency_tops_per_watt"])
    for design in table1_data.literature:
        if design.purpose == "1st-layer CNN":
            assert measured > design.efficiency_upper()


def test_bench_table1_build(benchmark):
    """Regenerating the measured OISA row from the architecture model."""
    row = benchmark(build_oisa_row)
    assert row["array_size"] == "128x128"


def test_bench_full_frame_first_layer(benchmark):
    """Hot path behind the table: one full 128x128 frame through the OPC."""
    oisa = OISAAccelerator(seed=0)
    weights = np.random.default_rng(0).normal(size=(64, 3, 3, 3)) * 0.1
    oisa.program_conv(weights, padding=1)
    frame = np.random.default_rng(1).uniform(0, 1, (3, 128, 128))
    oisa.process_frame(frame)  # pay the mapping frame outside the timer

    result = benchmark(oisa.process_frame, frame)
    assert result.features.shape == (64, 128, 128)
