"""Fig. 4(b): AWC transient staircase — regeneration + kernel benchmark."""

import numpy as np
import pytest

from repro.analysis.fig4 import build_fig4, render_fig4
from repro.circuits.awc import AwcCircuit, AwcDesign


@pytest.fixture(scope="module")
def fig4_data():
    return build_fig4()


def test_fig4_regenerates_paper_staircase(fig4_data, save_artifact):
    """The paper's figure: 16 monotone current levels spanning ~0-400 uA."""
    save_artifact("fig4_awc_staircase.txt", render_fig4(fig4_data))
    assert fig4_data.num_levels == 16
    assert fig4_data.monotonic
    assert 330 < fig4_data.max_current_ua < 430
    # The transient covers the paper's 16 ns window.
    assert fig4_data.times_ns[-1] == pytest.approx(16.0)


def test_fig4_converter_quality(fig4_data):
    """DNL stays well under 1 LSB — no missing codes at 4 bits."""
    assert np.abs(fig4_data.dnl_lsb).max() < 1.0
    assert np.abs(fig4_data.inl_lsb).max() < 1.0


def test_bench_awc_staircase_transient(benchmark):
    """Hot path: the full 16-code transient sweep."""
    circuit = AwcCircuit(AwcDesign(), seed=7)
    result = benchmark(circuit.staircase_transient)
    assert result["Ituning"].max() > 300e-6


def test_bench_awc_level_lookup(benchmark):
    """Hot path: vectorised code -> current conversion (used per mapping)."""
    circuit = AwcCircuit(AwcDesign(), seed=7)
    codes = np.random.default_rng(0).integers(0, 16, size=4000)
    levels = benchmark(circuit.level_current_a, codes)
    assert levels.shape == (4000,)
