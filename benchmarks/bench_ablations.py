"""Ablations over the design choices Section III motivates.

Not a paper artifact per se, but each sweep isolates one design decision
the paper argues for:

* **AWC error floor** — sweep the mismatch/offset sigmas and watch the
  realized-weight error; the [4:2] saturation follows from the floor.
* **NRZ vs RZ VCSEL biasing** — the always-on bias the paper adopts
  (citing [24]) beats return-to-zero once warm-up energy is priced.
* **Q-factor** — the low-Q choice trades crosstalk against drift
  sensitivity.
* **Hybrid vs TO-only tuning** — the CrossLight-inherited hybrid scheme
  makes per-frame retunes affordable.
"""

import numpy as np
import pytest

from repro.circuits.awc import AwcDesign
from repro.core.awc import AwcWeightMapper
from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.nn.quant import UniformWeightQuantizer
from repro.photonics.microring import MicroringDesign, MicroringResonator, solve_coupling_for_q
from repro.photonics.tuning import HybridTuning
from repro.photonics.vcsel import TernaryVcselEncoder
from repro.photonics.wdm import WdmGrid, effective_arm_transmission
from repro.util.tables import format_table


# --------------------------------------------------------------------------
# AWC error floor
# --------------------------------------------------------------------------
def _realized_error(bits: int, mismatch: float, offset_a: float) -> float:
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(16, 3, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(bits)
    quantized = quantizer.quantize(weights)
    design = AwcDesign(num_bits=bits, mismatch_sigma=mismatch, offset_sigma_a=offset_a)
    mapper = AwcWeightMapper(design, num_units=40, seed=3)
    realized = mapper.realize_quantized_weights(quantized, quantizer.scale(weights))
    return float(np.sqrt(np.mean((realized - weights) ** 2)))


def test_ablation_awc_error_floor(save_artifact):
    """With the error floor on, 4-bit stops improving over 3-bit."""
    rows = []
    for bits in (2, 3, 4):
        ideal = _realized_error(bits, 0.0, 0.0)
        real = _realized_error(bits, 0.03, 3e-6)
        rows.append((f"[{bits}:2]", ideal, real, real - ideal))
    text = format_table(
        ("config", "ideal AWC err", "real AWC err", "floor"),
        rows,
        title="Ablation: AWC mismatch/offset floor vs weight bits",
    )
    save_artifact("ablation_awc_floor.txt", text)
    # Ideal converter: monotone improvement with bits.
    assert rows[2][1] < rows[1][1] < rows[0][1]
    # Real converter: the 3->4 bit gain collapses relative to 2->3.
    gain_2_to_3 = rows[0][2] - rows[1][2]
    gain_3_to_4 = rows[1][2] - rows[2][2]
    assert gain_3_to_4 < gain_2_to_3


def test_bench_awc_realization(benchmark):
    """Hot path: realizing a full first-layer weight tensor."""
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(64, 3, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    quantized = quantizer.quantize(weights)
    mapper = AwcWeightMapper(num_units=40, seed=0)
    realized = benchmark(
        mapper.realize_quantized_weights, quantized, quantizer.scale(weights)
    )
    assert realized.shape == weights.shape


# --------------------------------------------------------------------------
# NRZ vs RZ
# --------------------------------------------------------------------------
def test_ablation_nrz_vs_rz(save_artifact):
    """The paper's always-on biasing wins once warm-up is priced."""
    encoder = TernaryVcselEncoder()
    symbol_time = 1e-9
    rows = []
    for symbol in (0, 1, 2):
        nrz = encoder.symbol_energy_j(symbol, symbol_time)
        rz = encoder.rz_symbol_energy_j(symbol, symbol_time)
        rows.append((symbol, nrz * 1e15, rz * 1e15))
    text = format_table(
        ("symbol", "NRZ [fJ]", "RZ [fJ]"),
        rows,
        title="Ablation: NRZ (paper) vs RZ VCSEL biasing per symbol",
    )
    save_artifact("ablation_nrz_rz.txt", text)
    # Uniform symbol mix: NRZ cheaper overall despite the idle bias.
    nrz_mean = np.mean([encoder.symbol_energy_j(s, symbol_time) for s in range(3)])
    rz_mean = np.mean([encoder.rz_symbol_energy_j(s, symbol_time) for s in range(3)])
    assert nrz_mean < rz_mean


# --------------------------------------------------------------------------
# Q-factor
# --------------------------------------------------------------------------
def test_ablation_q_factor_tradeoff(save_artifact):
    """Crosstalk falls with Q while drift sensitivity rises — hence Q~5000."""
    grid = WdmGrid()
    low_loss = MicroringDesign(round_trip_loss_db=0.06)
    rows = []
    crosstalks = []
    drifts = []
    for q in (2500, 5000, 10000):
        ring = MicroringResonator(
            MicroringDesign(
                round_trip_loss_db=0.06,
                self_coupling=solve_coupling_for_q(q, design=low_loss),
            )
        )
        weights = np.clip(
            np.linspace(0.15, 0.9, grid.num_channels), ring.min_transmission + 1e-6, 1.0
        )
        effective = effective_arm_transmission(grid, weights, ring=ring)
        crosstalk = float(np.max(np.abs(effective - weights) / weights))
        drift = abs(
            float(ring.lorentzian_transmission(10e-12))
            - float(ring.lorentzian_transmission(0.0))
        )
        crosstalks.append(crosstalk)
        drifts.append(drift)
        rows.append((q, crosstalk * 100, drift))
    text = format_table(
        ("Q", "crosstalk [%]", "drift sens. (10 pm)"),
        rows,
        title="Ablation: MR quality factor trade-off",
    )
    save_artifact("ablation_q_factor.txt", text)
    assert crosstalks[0] > crosstalks[-1]
    assert drifts[0] < drifts[-1]


# --------------------------------------------------------------------------
# Hybrid tuning
# --------------------------------------------------------------------------
def test_ablation_hybrid_vs_to_only_tuning(save_artifact):
    """EO fine-trim makes small retunes ~1000x faster than TO-only."""
    hybrid = HybridTuning()
    to_only = HybridTuning(eo_range_m=1e-15)  # EO effectively disabled
    small_shift = 0.03e-9
    rows = [
        (
            "hybrid (paper)",
            hybrid.retune(small_shift).latency_s * 1e9,
            hybrid.retune(small_shift).energy_j * 1e15,
        ),
        (
            "TO-only",
            to_only.retune(small_shift).latency_s * 1e9,
            to_only.retune(small_shift).energy_j * 1e15,
        ),
    ]
    text = format_table(
        ("scheme", "latency [ns]", "energy [fJ]"),
        rows,
        title="Ablation: hybrid TO+EO vs TO-only for a 30 pm retune",
    )
    save_artifact("ablation_tuning.txt", text)
    assert rows[0][1] < rows[1][1] / 100.0


# --------------------------------------------------------------------------
# Crosstalk on/off
# --------------------------------------------------------------------------
def test_ablation_crosstalk_contribution(save_artifact):
    """How much of the realized-weight error the Lorentzian tails add."""
    rng = np.random.default_rng(1)
    weights = rng.normal(size=(32, 3, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    quantized = quantizer.quantize(weights)
    scale = quantizer.scale(weights)
    rows = []
    for label, crosstalk in (("with crosstalk", True), ("without", False)):
        opc = OpticalProcessingCore(
            OISAConfig(), seed=5, enable_crosstalk=crosstalk, enable_read_noise=False
        )
        programmed = opc.program(quantized, scale)
        rows.append((label, programmed.weight_error_relative * 100))
    text = format_table(
        ("configuration", "realized-weight rel. error [%]"),
        rows,
        title="Ablation: inter-channel crosstalk contribution",
    )
    save_artifact("ablation_crosstalk.txt", text)
    assert rows[0][1] > rows[1][1]


def test_bench_opc_program(benchmark):
    """Hot path: programming 64x3 kernels through the full chain."""
    rng = np.random.default_rng(2)
    weights = rng.normal(size=(64, 3, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    quantized = quantizer.quantize(weights)
    scale = quantizer.scale(weights)
    opc = OpticalProcessingCore(OISAConfig(), seed=0)
    programmed = benchmark(opc.program, quantized, scale)
    assert programmed.realized.shape == weights.shape


def test_bench_opc_convolve(benchmark):
    """Hot path: one noisy photonic convolution over a frame."""
    rng = np.random.default_rng(3)
    weights = rng.normal(size=(64, 3, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    opc = OpticalProcessingCore(OISAConfig(), seed=0)
    opc.program(quantizer.quantize(weights), quantizer.scale(weights))
    frame = rng.choice([0.0, 0.5, 1.0], size=(1, 3, 128, 128))
    out = benchmark(opc.convolve, frame, 1, 1)
    assert out.shape == (1, 64, 128, 128)
