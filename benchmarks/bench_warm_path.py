"""Warm-path serving bench: vectorized steady-state frame throughput.

PR 3 vectorized the *cold* weight-programming chain and recorded the
engine at ~1592 wall-clock FPS on the kernel-swapping LeNet stream
(``BENCH_program.json`` → ``engine.wall_clock_fps``).  This bench covers
the *warm* path that PR landed next: admitted frames stage fleet-wide
(one stack + one ternary encode per model/geometry) and each per-(node,
model) run computes in one batched forward, with the pre-vectorization
per-chunk loop retained as ``compute_mode="reference"``.

Two workloads (see :func:`repro.analysis.perf.bench_warm_path`):

* **engine-limited** — a long drop-free MLP-stem stream where per-frame
  engine overhead bounds throughput; carries the headline
  ``wall_clock_fps`` and the ≥10x claim against the 1592 baseline;
* **compute-bound** — the PR-3 LeNet stream, where the off-chip head
  dominates and batching cannot help; kept for trajectory continuity.

Both workloads assert the batched and reference modes deliver
byte-for-byte identical outputs on the bench stream itself.  The run
writes ``BENCH_warm_path.json`` at the repo root through the guarded
:func:`~repro.analysis.perf.write_bench` — a ``REPRO_BENCH_QUICK=1``
smoke run (shorter stream, one repeat) never clobbers a full-mode
trajectory entry, and the payload must parse as *strict* JSON (no
``NaN``/``Infinity`` constants).
"""

import json
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_warm_path.json")
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


@pytest.fixture(scope="module")
def bench_result(save_artifact):
    from repro.analysis.perf import (
        run_warm_path_bench,
        would_clobber_full_bench,
        write_bench,
    )

    result = run_warm_path_bench(quick=QUICK)
    kept = would_clobber_full_bench(BENCH_JSON, result)
    write_bench(BENCH_JSON, result)
    save_artifact("warm_path.txt", json.dumps(result, indent=2))
    if kept:
        print(f"[full-mode trajectory entry at {BENCH_JSON} kept]")
    else:
        print(f"[warm-path trajectory entry written to {BENCH_JSON}]")
    return result


def test_batched_and_reference_modes_bit_identical(bench_result):
    """The bit-identity contract, measured on the bench streams."""
    assert bench_result["engine_limited"]["bit_identical"] is True
    assert bench_result["compute_bound"]["bit_identical"] is True


def test_headline_stream_is_drop_free(bench_result):
    """The FPS claim must measure a steady state, not a shedding server."""
    limited = bench_result["engine_limited"]
    assert limited["delivered"] == limited["frames"]


def test_warm_path_beats_cold_baseline_10x(bench_result):
    """The acceptance claim: ≥10x the 1592 FPS PR-3 engine number.

    Skipped in quick smoke mode — a 256-frame single-repeat stream on a
    loaded CI box measures noise, and the full-mode trajectory entry is
    the claim of record.
    """
    if bench_result["quick"]:
        pytest.skip("throughput claim is asserted on full-mode runs only")
    assert bench_result["speedup_vs_baseline"] >= 10.0, (
        f"warm path at {bench_result['wall_clock_fps']:.0f} FPS is below "
        f"10x the {bench_result['baseline_fps']:.0f} FPS baseline"
    )


def test_warm_path_json_is_strict_json(bench_result):
    """The payload on disk parses with NaN/Infinity rejected."""

    def reject(name):
        raise AssertionError(f"non-JSON constant {name!r} in {BENCH_JSON}")

    assert os.path.exists(BENCH_JSON)
    with open(BENCH_JSON) as handle:
        payload = json.load(handle, parse_constant=reject)
    assert payload["bench"] == "warm_path"
    assert payload["engine_limited"]["batched_fps"] > 0
