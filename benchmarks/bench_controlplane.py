"""Control-plane drill: autoscaling tracks the static fleet at lower cost.

The acceptance scenario for the sharded fleet control plane
(:mod:`repro.engine.controlplane` + :mod:`repro.engine.router`): the
``diurnal-regions`` workload streams three phase-shifted regional
diurnal interactive tenants (plus a batch tail) into a three-shard
control plane with partition placement — one regional LeNet per shard —
and the bench serves the *same* request stream twice:

* **autoscaled** — each shard breathes between ``MIN_NODES`` and
  ``MAX_NODES`` against its own regional swing, with the capacity model
  measured by :func:`repro.analysis.capacity.sustainable_fps_per_node`;
* **static max-provisioned** — every shard pinned at ``MAX_NODES``, the
  fleet a capacity planner would buy for the regional peak.

and asserts:

* **the scaler tracks the bound** — the autoscaled interactive
  deadline-hit rate stays within ``HIT_TOLERANCE`` of the static
  fleet's;
* **the savings are material** — the autoscaled fleet consumes at least
  ``SAVINGS_FLOOR`` fewer node-seconds than the static counterfactual
  (same windows, same duration convention);
* **determinism** — two independent control planes produce
  byte-identical scaling-decision audit trails;
* **default-path bit-identity** — a 1-shard, autoscale-off control
  plane still reproduces the pinned ``mixed_two_nodes_1800fps`` golden
  from ``tests/goldens/serve_default.json`` byte for byte.

The run writes ``BENCH_controlplane.json`` at the repo root as the
control-plane perf-trajectory entry.  Set ``REPRO_BENCH_QUICK=1`` (CI
smoke) for the shorter stream; the invariant flags and assertions are
identical either way, and the guarded writer never lets a smoke run
clobber a full-mode entry.
"""

import hashlib
import json
import os
import platform

import numpy as np
import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_controlplane.json")
GOLDEN_JSON = os.path.join(REPO_ROOT, "tests", "goldens", "serve_default.json")
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

SCENARIO = "diurnal-regions"
SHARDS = 3
MIN_NODES = 1
MAX_NODES = 3
OFFERED_FPS = 800.0
SEED = 0
POLICY = "greedy"
ROUTER = "rendezvous"
PLACEMENT = "partition"
FRAMES = 180 if QUICK else 600
WINDOW_S = 0.02 if QUICK else 0.01

#: Autoscaled interactive hit rate may trail the static fleet's by at
#: most this much (the ISSUE acceptance tolerance).
HIT_TOLERANCE = 0.005
#: Node-seconds the scaler must shave off the static counterfactual.
SAVINGS_FLOOR = 0.25


def _autoscaler_config():
    from repro.engine import AutoscalerConfig

    return AutoscalerConfig(
        window_s=WINDOW_S,
        min_nodes=MIN_NODES,
        max_nodes=MAX_NODES,
    )


def _serve(autoscaled: bool):
    """One control-plane pass over the bench stream; returns the report."""
    from repro.engine import ControlPlane, build_scenario

    scenario = build_scenario(
        SCENARIO, frames=FRAMES, offered_fps=OFFERED_FPS, seed=SEED
    )
    plane = ControlPlane(
        shards=SHARDS,
        nodes_per_shard=MAX_NODES,
        micro_batch=8,
        seed=SEED,
        policy=POLICY,
        router=ROUTER,
        autoscaler=_autoscaler_config() if autoscaled else None,
    )
    return plane.serve_scenario(scenario, placement=PLACEMENT)


def _hit_rate(report, class_name: str) -> float:
    stats = report.slo.classes.get(class_name)
    return stats.hit_rate if stats is not None else float("nan")


def _default_path_matches_golden() -> bool:
    """Serve the pinned mixed stream through a 1-shard control plane.

    Mirrors ``tests/test_engine_scheduler.py`` exactly — but through
    :class:`~repro.engine.controlplane.ControlPlane` with one shard and
    no autoscaler, which must delegate wholesale and stay byte-identical
    to the golden (the control plane may not perturb the default path
    even by one ULP).
    """
    from repro.engine import ControlPlane, FrameRequest
    from repro.nn.models import build_lenet

    plane = ControlPlane(shards=1, nodes_per_shard=2, micro_batch=8, seed=0)
    plane.register_model("model-a", build_lenet(seed=0))
    plane.register_model("model-b", build_lenet(seed=1))
    frames = np.random.default_rng(42).uniform(0.0, 1.0, (48, 1, 28, 28))
    requests = [
        FrameRequest(frames[i], "model-a" if (i // 6) % 2 == 0 else "model-b")
        for i in range(48)
    ]
    report = plane.serve(requests, offered_fps=1800.0)

    responses = []
    for resp in report.responses:
        output = resp.output
        responses.append(
            {
                "index": resp.index,
                "model_key": resp.model_key,
                "node_id": resp.node_id,
                "arrival_s": repr(resp.event.arrival_s),
                "start_s": repr(resp.event.start_s),
                "finish_s": repr(resp.event.finish_s),
                "dropped": resp.event.dropped,
                "remapped": resp.event.remapped,
                "degraded": resp.degraded,
                "output_sha256": (
                    None
                    if output is None
                    else hashlib.sha256(
                        np.ascontiguousarray(output, dtype=float).tobytes()
                    ).hexdigest()
                ),
            }
        )
    actual = {
        "responses": responses,
        "total_energy_j": repr(report.stream.total_energy_j),
        "frames": report.stream.frames,
        "dropped": report.stream.dropped,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "payload_bytes": report.payload_bytes,
        "radio_energy_j": repr(report.radio_energy_j),
        "node_frames": {
            str(node): count
            for node, count in sorted(report.node_frames.items())
        },
        "health": report.health is not None,
    }
    with open(GOLDEN_JSON) as handle:
        expected = json.load(handle)
    return actual == expected["mixed_two_nodes_1800fps"]


def run_controlplane_bench(quick: bool = QUICK) -> dict:
    """Autoscaled vs static passes, plus the invariant flags."""
    autoscaled = _serve(autoscaled=True)
    repeat = _serve(autoscaled=True)
    static = _serve(autoscaled=False)

    plane_report = autoscaled.controlplane
    trail = plane_report.decision_trail()
    deterministic = trail == repeat.controlplane.decision_trail()

    autoscaled_hit = _hit_rate(autoscaled, "interactive")
    static_hit = _hit_rate(static, "interactive")
    return {
        "bench": "controlplane",
        "schema": 1,
        "quick": quick,
        "scenario": SCENARIO,
        "frames": FRAMES,
        "offered_fps": OFFERED_FPS,
        "shards": SHARDS,
        "min_nodes": MIN_NODES,
        "max_nodes": MAX_NODES,
        "window_s": WINDOW_S,
        "router": ROUTER,
        "policy": POLICY,
        "placement": PLACEMENT,
        "seed": SEED,
        "hit_tolerance": HIT_TOLERANCE,
        "savings_floor": SAVINGS_FLOOR,
        "autoscaled_interactive_hit_rate": autoscaled_hit,
        "static_interactive_hit_rate": static_hit,
        "interactive_hit_delta": autoscaled_hit - static_hit,
        "autoscaled_batch_hit_rate": _hit_rate(autoscaled, "batch"),
        "static_batch_hit_rate": _hit_rate(static, "batch"),
        "node_seconds": plane_report.node_seconds,
        "static_node_seconds": plane_report.static_node_seconds,
        "node_seconds_saved_frac": plane_report.node_seconds_saved_frac,
        "windows": plane_report.windows,
        "scaling_decisions": len(plane_report.decisions),
        "decision_trail_sha256": hashlib.sha256(
            trail.encode()
        ).hexdigest(),
        "routes": plane_report.routes,
        "deterministic": deterministic,
        "default_bit_identical": _default_path_matches_golden(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


@pytest.fixture(scope="module")
def bench_result(save_artifact):
    from repro.analysis.perf import would_clobber_full_bench, write_bench

    result = run_controlplane_bench()
    kept = would_clobber_full_bench(BENCH_JSON, result)
    write_bench(BENCH_JSON, result)
    save_artifact("controlplane.txt", json.dumps(result, indent=2))
    if kept:
        print(f"[full-mode trajectory entry at {BENCH_JSON} kept]")
    else:
        print(f"[controlplane trajectory entry written to {BENCH_JSON}]")
    return result


def test_autoscaler_tracks_the_static_fleet(bench_result):
    """The headline acceptance: hit rate within tolerance of static."""
    delta = bench_result["interactive_hit_delta"]
    assert delta >= -HIT_TOLERANCE, (
        f"autoscaled interactive hit rate trails the static fleet by "
        f"{-delta:.4f} (> {HIT_TOLERANCE})"
    )


def test_autoscaler_saves_node_seconds(bench_result):
    """The savings are material, not a rounding artifact."""
    assert bench_result["node_seconds_saved_frac"] >= SAVINGS_FLOOR, (
        f"autoscaler saved only "
        f"{bench_result['node_seconds_saved_frac']:.3f} of the static "
        f"fleet's node-seconds (floor {SAVINGS_FLOOR})"
    )


def test_autoscaler_actually_scaled(bench_result):
    """The drill is non-trivial: the trail records real resizes."""
    assert bench_result["scaling_decisions"] >= 1
    assert bench_result["node_seconds"] < bench_result["static_node_seconds"]


def test_scaling_trail_is_deterministic(bench_result):
    """Two independent planes produce byte-identical audit trails."""
    assert bench_result["deterministic"] is True


def test_default_path_stays_bit_identical(bench_result):
    """A 1-shard, autoscale-off plane leaves the serving golden intact."""
    assert bench_result["default_bit_identical"] is True


def test_controlplane_json_written_at_repo_root(bench_result):
    """The trajectory artifact exists and round-trips as JSON."""
    assert os.path.exists(BENCH_JSON)
    with open(BENCH_JSON) as handle:
        payload = json.load(handle)
    assert payload["bench"] == "controlplane"
    assert "node_seconds_saved_frac" in payload
